//! The typed HTTP API surface: request/response structs with JSON codecs.
//!
//! Every wire document is hand-rolled over [`harness::json`]
//! (`mobile_congest_harness::json`) like the rest of the workspace — no
//! serde.  Each struct encodes to one compact `kind:"..."`-tagged JSON
//! object and parses back exactly, so the [`crate::client::Client`] and the
//! server can never drift: both sides use these codecs.

use harness::json::{self, JsonValue};
use harness::SpecError;

use mobile_congest_harness as harness;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted and durable; no worker has picked up a batch yet.
    Queued,
    /// At least one cell batch has executed; more remain.
    Running,
    /// Every cell is stored and the summary is finalized.
    Done,
    /// Cancelled via `DELETE /jobs/{fp}`; completed cells remain stored and
    /// a resubmission resumes from them.
    Cancelled,
    /// The server could not persist or execute the job (the status carries
    /// the error).
    Failed,
}

impl JobState {
    /// The stable lowercase wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parse a wire label.
    pub fn from_label(label: &str) -> Option<JobState> {
        Some(match label {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the state is final (no worker will touch the job again
    /// without a new submission).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

impl core::fmt::Display for JobState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

fn missing(field: &str) -> SpecError {
    SpecError::Missing {
        field: field.to_string(),
    }
}

/// The status document of one job (`POST /jobs`, `GET /jobs/{fp}`,
/// `DELETE /jobs/{fp}` all return it).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The spec fingerprint — the job's identity.
    pub fingerprint: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Cells in the full grid.
    pub cells_total: usize,
    /// Cells durably stored (any outcome).
    pub cells_done: usize,
    /// Stored cells that executed to a report.
    pub executed: usize,
    /// Stored cells skipped by validation.
    pub skipped: usize,
    /// Stored cells that failed at runtime.
    pub failed: usize,
    /// Executed cells disagreeing with the fault-free reference.
    pub disagreements: usize,
    /// The merged [`ReportRecord`](harness::ReportRecord) fingerprint —
    /// present once the job is done; equals the record fingerprint of the
    /// one-shot CLI run of the same spec.
    pub report_fingerprint: Option<String>,
    /// Why the job failed (only on [`JobState::Failed`]).
    pub error: Option<String>,
}

impl JobStatus {
    /// Encode as one compact JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("kind".to_string(), JsonValue::Str("job-status".into())),
            (
                "fingerprint".to_string(),
                JsonValue::Str(self.fingerprint.clone()),
            ),
            (
                "state".to_string(),
                JsonValue::Str(self.state.label().into()),
            ),
            (
                "cells_total".to_string(),
                JsonValue::from_u64(self.cells_total as u64),
            ),
            (
                "cells_done".to_string(),
                JsonValue::from_u64(self.cells_done as u64),
            ),
            (
                "executed".to_string(),
                JsonValue::from_u64(self.executed as u64),
            ),
            (
                "skipped".to_string(),
                JsonValue::from_u64(self.skipped as u64),
            ),
            (
                "failed".to_string(),
                JsonValue::from_u64(self.failed as u64),
            ),
            (
                "disagreements".to_string(),
                JsonValue::from_u64(self.disagreements as u64),
            ),
        ];
        if let Some(fp) = &self.report_fingerprint {
            fields.push(("report_fingerprint".to_string(), JsonValue::Str(fp.clone())));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_string(), JsonValue::Str(error.clone())));
        }
        JsonValue::Obj(fields).to_string()
    }

    /// Parse from the [`JobStatus::to_json`] form.
    pub fn from_json(text: &str) -> Result<JobStatus, SpecError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse from an already-parsed JSON value.
    pub fn from_value(v: &JsonValue) -> Result<JobStatus, SpecError> {
        if v.get("kind").and_then(JsonValue::as_str) != Some("job-status") {
            return Err(SpecError::Invalid {
                reason: "not a job-status document".into(),
            });
        }
        let num = |name: &str| {
            v.get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| missing(name))
        };
        let state_label = v
            .get("state")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| missing("state"))?;
        Ok(JobStatus {
            fingerprint: v
                .get("fingerprint")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("fingerprint"))?
                .to_string(),
            state: JobState::from_label(state_label).ok_or_else(|| SpecError::Invalid {
                reason: format!("unknown job state `{state_label}`"),
            })?,
            cells_total: num("cells_total")?,
            cells_done: num("cells_done")?,
            executed: num("executed")?,
            skipped: num("skipped")?,
            failed: num("failed")?,
            disagreements: num("disagreements")?,
            report_fingerprint: v
                .get("report_fingerprint")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            error: v
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

/// The job listing (`GET /jobs`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobList {
    /// One status per known job, ordered by fingerprint.
    pub jobs: Vec<JobStatus>,
}

impl JobList {
    /// Encode as one compact JSON object.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str("job-list".into())),
            (
                "jobs".to_string(),
                JsonValue::Arr(
                    self.jobs
                        .iter()
                        .map(|j| json::parse(&j.to_json()).expect("status JSON is valid"))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parse from the [`JobList::to_json`] form.
    pub fn from_json(text: &str) -> Result<JobList, SpecError> {
        let v = json::parse(text)?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("job-list") {
            return Err(SpecError::Invalid {
                reason: "not a job-list document".into(),
            });
        }
        Ok(JobList {
            jobs: v
                .get("jobs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| missing("jobs"))?
                .iter()
                .map(JobStatus::from_value)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

/// Parameters of the cross-job facet query (`GET /query`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryParams {
    /// Facet name (`overhead`, `network_rounds`, a notes metric, …).
    pub facet: String,
    /// Which statistic of the facet to report
    /// (`mean`/`stddev`/`min`/`max`/`p10`/`p50`/`p90`/`p99`).
    pub stat: String,
    /// Keep only groups with this graph display name.
    pub graph: Option<String>,
    /// Keep only groups with this adversary display name.
    pub adversary: Option<String>,
    /// Keep only groups with this compiler display name.
    pub compiler: Option<String>,
    /// Restrict to these job fingerprints (empty = every job).
    pub jobs: Vec<String>,
}

impl QueryParams {
    /// A query over every job for `facet`'s `stat`.
    pub fn new(facet: &str, stat: &str) -> QueryParams {
        QueryParams {
            facet: facet.to_string(),
            stat: stat.to_string(),
            graph: None,
            adversary: None,
            compiler: None,
            jobs: Vec::new(),
        }
    }

    /// Render as an URL query string (percent-encoding the values).
    pub fn to_query_string(&self) -> String {
        let mut parts = vec![
            format!("facet={}", crate::http::percent_encode(&self.facet)),
            format!("stat={}", crate::http::percent_encode(&self.stat)),
        ];
        for (key, value) in [
            ("graph", &self.graph),
            ("adversary", &self.adversary),
            ("compiler", &self.compiler),
        ] {
            if let Some(value) = value {
                parts.push(format!("{key}={}", crate::http::percent_encode(value)));
            }
        }
        if !self.jobs.is_empty() {
            parts.push(format!(
                "jobs={}",
                crate::http::percent_encode(&self.jobs.join(","))
            ));
        }
        parts.join("&")
    }
}

/// One row of a query result: one grid cell of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// The owning job's fingerprint.
    pub job: String,
    /// Graph display name.
    pub graph: String,
    /// Adversary display name.
    pub adversary: String,
    /// Compiler display name.
    pub compiler: String,
    /// The requested statistic of the requested facet.
    pub value: f64,
}

/// The query result (`GET /query`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The facet that was queried.
    pub facet: String,
    /// The statistic that was reported.
    pub stat: String,
    /// One row per matching grid cell, jobs in fingerprint order.
    pub rows: Vec<QueryRow>,
}

impl QueryResponse {
    /// Encode as one compact JSON object.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str("query".into())),
            ("facet".to_string(), JsonValue::Str(self.facet.clone())),
            ("stat".to_string(), JsonValue::Str(self.stat.clone())),
            (
                "rows".to_string(),
                JsonValue::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            JsonValue::Obj(vec![
                                ("job".to_string(), JsonValue::Str(r.job.clone())),
                                ("graph".to_string(), JsonValue::Str(r.graph.clone())),
                                ("adversary".to_string(), JsonValue::Str(r.adversary.clone())),
                                ("compiler".to_string(), JsonValue::Str(r.compiler.clone())),
                                ("value".to_string(), JsonValue::from_f64(r.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    /// Parse from the [`QueryResponse::to_json`] form.
    pub fn from_json(text: &str) -> Result<QueryResponse, SpecError> {
        let v = json::parse(text)?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("query") {
            return Err(SpecError::Invalid {
                reason: "not a query document".into(),
            });
        }
        let str_field = |obj: &JsonValue, name: &str| {
            obj.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(name))
        };
        Ok(QueryResponse {
            facet: str_field(&v, "facet")?,
            stat: str_field(&v, "stat")?,
            rows: v
                .get("rows")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| missing("rows"))?
                .iter()
                .map(|r| {
                    Ok(QueryRow {
                        job: str_field(r, "job")?,
                        graph: str_field(r, "graph")?,
                        adversary: str_field(r, "adversary")?,
                        compiler: str_field(r, "compiler")?,
                        value: r
                            .get("value")
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| missing("value"))?,
                    })
                })
                .collect::<Result<Vec<_>, SpecError>>()?,
        })
    }
}

/// The error document every non-2xx response carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Human-readable explanation.
    pub error: String,
}

impl ApiError {
    /// Encode as one compact JSON object.
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str("error".into())),
            ("error".to_string(), JsonValue::Str(self.error.clone())),
        ])
        .to_string()
    }

    /// Parse from the [`ApiError::to_json`] form.
    pub fn from_json(text: &str) -> Result<ApiError, SpecError> {
        let v = json::parse(text)?;
        Ok(ApiError {
            error: v
                .get("error")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("error"))?
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_status() -> JobStatus {
        JobStatus {
            fingerprint: "00112233deadbeef".into(),
            state: JobState::Running,
            cells_total: 54,
            cells_done: 20,
            executed: 18,
            skipped: 2,
            failed: 0,
            disagreements: 1,
            report_fingerprint: None,
            error: None,
        }
    }

    #[test]
    fn job_status_round_trips_with_and_without_optionals() {
        let mut status = sample_status();
        assert_eq!(JobStatus::from_json(&status.to_json()).unwrap(), status);
        status.state = JobState::Done;
        status.report_fingerprint = Some("ffee00112233".into());
        status.error = Some("boom".into());
        assert_eq!(JobStatus::from_json(&status.to_json()).unwrap(), status);
    }

    #[test]
    fn job_list_round_trips() {
        let list = JobList {
            jobs: vec![sample_status(), sample_status()],
        };
        assert_eq!(JobList::from_json(&list.to_json()).unwrap(), list);
        assert_eq!(
            JobList::from_json(&JobList::default().to_json()).unwrap(),
            JobList::default()
        );
    }

    #[test]
    fn query_response_round_trips() {
        let response = QueryResponse {
            facet: "overhead".into(),
            stat: "mean".into(),
            rows: vec![QueryRow {
                job: "abc".into(),
                graph: "K8".into(),
                adversary: "random-mobile".into(),
                compiler: "clique(f=1)".into(),
                value: 12.25,
            }],
        };
        assert_eq!(
            QueryResponse::from_json(&response.to_json()).unwrap(),
            response
        );
    }

    #[test]
    fn all_states_round_trip_their_labels() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            assert_eq!(JobState::from_label(state.label()), Some(state));
        }
        assert_eq!(JobState::from_label("paused"), None);
        assert!(JobState::Done.is_terminal());
        assert!(!JobState::Running.is_terminal());
    }

    #[test]
    fn api_errors_round_trip() {
        let e = ApiError {
            error: "no job with fingerprint `xyz`".into(),
        };
        assert_eq!(ApiError::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn query_params_render_stable_query_strings() {
        let mut params = QueryParams::new("overhead", "p99");
        params.graph = Some("K8".into());
        params.jobs = vec!["a".into(), "b".into()];
        assert_eq!(
            params.to_query_string(),
            "facet=overhead&stat=p99&graph=K8&jobs=a%2Cb"
        );
    }
}
