//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the small slice of the `rand 0.8` API it actually uses as a local crate:
//!
//! * [`RngCore`] — raw 32/64-bit output and byte filling,
//! * [`SeedableRng`] — byte-seed construction plus a SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] (NOT stream-compatible with upstream
//!   `rand_core`, which expands seeds with PCG32),
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer ranges),
//!   `gen_bool`, blanket-implemented for every `RngCore` (sized or not),
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`.
//!
//! Integer range sampling uses rejection sampling (Lemire-style widening is
//! unnecessary here), so draws are exactly uniform; `f64` generation uses the
//! standard 53-bit mantissa construction.  The concrete deterministic
//! generator lives in the sibling `rand_chacha` crate.

/// Raw random-word source.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The byte-seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full byte seed with SplitMix64.
    ///
    /// Note: upstream `rand_core` uses a PCG32-based expansion here, so the
    /// derived streams are NOT compatible with the real crate.  Swapping the
    /// vendor stubs back to crates.io will change every seeded stream;
    /// RNG-stream-sensitive tests (e.g. the expander packing tests) would
    /// need their margins re-checked.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from raw random words (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for isize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as isize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high - low) as u64;
                low + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                // Width and add-back computed in 64-bit space: a wide range
                // (e.g. most of i32) overflows the narrow type's own
                // subtraction, and the offset may not fit the narrow type.
                let span = (high as i64).wrapping_sub(low as i64) as u64;
                ((low as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection sampling (exactly unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` that fits in u64; reject draws beyond it.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample from an empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return Standard::sample(rng);
                }
                let span = ((high - low) as u64) + 1;
                low + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_inclusive_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_inclusive_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample from an empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return Standard::sample(rng);
                }
                // See impl_uniform_signed: 64-bit space avoids narrow-type
                // width overflow.
                let span = ((high as i64).wrapping_sub(low as i64) as u64) + 1;
                ((low as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
    )*};
}
impl_inclusive_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{RngCore, UniformInt};

    /// Slice shuffling and choosing, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

/// Minimal `rngs` module so `rand::rngs::mock`-style test doubles have a home.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A tiny, fast, non-cryptographic generator (xorshift64*); used by tests
    /// that do not care about stream quality.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = u64::from_le_bytes(seed);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-3..4);
            assert!((-3..4).contains(&y));
            let z: u64 = rng.gen_range(0..=5);
            assert!(z <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        // Regression: ranges wider than the signed type's positive half used
        // to overflow the width computation and escape the bounds.
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..2000 {
            let x: i32 = rng.gen_range(-2_000_000_000..2_000_000_000);
            assert!(
                (-2_000_000_000..2_000_000_000).contains(&x),
                "{x} out of range"
            );
            let y: i8 = rng.gen_range(-120..120);
            assert!((-120..120).contains(&y), "{y} out of range");
            let z: i32 = rng.gen_range(-2_000_000_000..=2_000_000_000);
            assert!(
                (-2_000_000_000..=2_000_000_000).contains(&z),
                "{z} out of range"
            );
            let w: i64 = rng.gen_range(i64::MIN..i64::MAX);
            assert!(w < i64::MAX);
            let v: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = v;
            let u: u64 = rng.gen_range(0..=u64::MAX - 1);
            assert!(u < u64::MAX);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
