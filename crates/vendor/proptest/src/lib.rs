//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the API the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range/`any`/tuple strategies, `prop_map`, `prop::collection::{vec,
//! btree_map}`, `prop::sample::Index` and the `prop_assert*` macros.
//!
//! Differences from upstream: failing inputs are *not* shrunk (the failing
//! case is reported as-is), and generation is deterministic per test — the
//! RNG is seeded from the test's name and case number, so failures reproduce
//! without a persistence file.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Error carried out of a failing property (a formatted assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: Copy> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

impl<T: Copy> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

/// A strategy producing one fixed value (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as rand::Standard>::sample(rng)
            }
        }
    )*};
}
impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i64, bool, f64);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        <u32 as rand::Standard>::sample(rng) as i32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The `prop` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Acceptable size arguments for collection strategies: a fixed
        /// length or a half-open range of lengths.
        pub trait IntoSizeRange {
            /// Draw a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector whose elements come from `element` and whose length comes
        /// from `size`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// Strategy for `BTreeMap<K, V>`.
        pub struct BTreeMapStrategy<K, V, L> {
            keys: K,
            values: V,
            size: L,
        }

        impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
            L: IntoSizeRange,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len)
                    .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                    .collect()
            }
        }

        /// A map with up to `size` entries (duplicate keys collapse, as
        /// upstream).
        pub fn btree_map<K, V, L>(keys: K, values: V, size: L) -> BTreeMapStrategy<K, V, L>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
            L: IntoSizeRange,
        {
            BTreeMapStrategy { keys, values, size }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};
        use rand::Rng;

        /// A random index into a collection of as-yet-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length (panics on empty).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.gen())
            }
        }
    }
}

/// Derive a per-test deterministic RNG from the test name and case number.
pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// Everything a property test file needs.
pub mod prelude {
    pub use super::{any, prop, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; failure aborts only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) { .. }`
/// becomes a normal test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut proptest_rng = $crate::rng_for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut proptest_rng);)*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, pair in (0u64..5, -3i64..4)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((-3..4).contains(&pair.1));
        }

        #[test]
        fn collections(v in prop::collection::vec(any::<u16>(), 2..6),
                       m in prop::collection::btree_map(0u64..10, 0i64..3, 0..5)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(m.len() < 5);
        }

        #[test]
        fn mapping(n in (3usize..7).prop_map(|k| k * 2)) {
            prop_assert!(n % 2 == 0);
            prop_assert!((6..14).contains(&n));
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #[test]
        fn default_config_block(x in 0u64..3) {
            prop_assert!(x < 3);
        }
    }
}
