//! Offline stand-in for `rand_chacha`: an actual ChaCha block function (8
//! rounds) exposed through the [`ChaCha8Rng`] name the workspace imports.
//!
//! The keystream is a genuine ChaCha8 keystream (RFC 7539 quarter-round over a
//! 256-bit key, 64-bit block counter), so every statistical property the
//! simulator and sketches rely on — uniformity, independence across seeds,
//! long period — holds exactly as with the upstream crate.  Output word order
//! follows the upstream convention: `next_u32` yields the block's words in
//! order, `next_u64` packs two consecutive words little-endian.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    index: usize,
}

impl core::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("stream", &self.stream)
            .finish()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CHACHA_CONSTANTS[0],
            CHACHA_CONSTANTS[1],
            CHACHA_CONSTANTS[2],
            CHACHA_CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Select a keystream number (distinct streams from the same seed are
    /// independent keystreams, as upstream).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16; // force refill
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut a2 = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(10);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let xs2: Vec<u64> = (0..32).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude balance check: each of the 64 bit positions is set roughly
        // half the time over 4096 draws.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut counts = [0u32; 64];
        for _ in 0..4096 {
            let w: u64 = rng.gen();
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((w >> bit) & 1) as u32;
            }
        }
        for &c in &counts {
            assert!((1700..=2400).contains(&c), "bit bias: {c}/4096");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(77);
        let _: u64 = a.gen();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
