//! Deterministic asynchronous execution: nodes as concurrent processes under
//! a virtual-time discrete-event scheduler.
//!
//! The lockstep round engine (`congest_sim::algorithm::run_on_network`)
//! executes a CONGEST algorithm in perfectly synchronous rounds: everything
//! sent in round `r` is delivered in round `r`.  The mobile-adversary model
//! of the paper is strictly stronger than that world — message delay,
//! reordering, partial synchrony, crash-recovery and stragglers all matter —
//! so this crate adds a second executor in which **every node runs as a real
//! concurrent process** (a host thread holding one payload instance per
//! node), exchanging messages over channels, while a **virtual clock** makes
//! every run deterministic and byte-replayable regardless of how many host
//! threads the machine offers.
//!
//! # The model
//!
//! * Virtual time advances in integer **ticks**.  Each directed arc carries
//!   one *slot* per payload round, in order (per-arc FIFO): the slot is the
//!   round's message, or an explicit empty slot when the sender wrote
//!   nothing.  A node executes its round-`r` send as soon as it has consumed
//!   every round-`r−1` inbox slot (an α-synchronizer), and consumes round `r`
//!   once the round-`r` slot of **every** in-arc has arrived.
//! * Delivery behaviour is **data**: a [`ScheduleDef`] assigns each slot a
//!   latency (plus a bounded reorder jitter hashed from the run seed, the
//!   arc, and the sequence number — never from the adversary's RNG), may
//!   drop slot contents ([`DropModel`]), may delay slots across a partition
//!   boundary until the partition heals ([`PartitionWindow`]), and may crash
//!   nodes for windows of ticks ([`CrashWindow`]; arrivals queue per-arc and
//!   are consumed after recovery).
//! * Every tick with activity performs **one network exchange**: the slots
//!   arriving that tick are assembled into a [`Traffic`] and passed through
//!   the *same* [`Network::exchange_in_place`] the lockstep engine uses, so
//!   the adversary marks edges, spends budget, corrupts payloads and logs
//!   views with bit-identical randomness.
//!
//! # The parity contract
//!
//! On the synchronous schedule ([`ScheduleDef::synchronous`]: zero latency,
//! no reordering, no drops, no partitions, no crashes) every node sends
//! round `r` at tick `r` and every slot arrives at tick `r`, so tick `r`'s
//! exchange carries exactly the lockstep engine's round-`r` traffic.
//! Outputs, metrics, corruption histories and eavesdropper views are
//! therefore **byte-identical** to `run_on_network` — pinned by this crate's
//! tests and by the umbrella `tests/async_exec.rs` parity suite over the
//! zoo grid.
//!
//! The construction leans on the `CongestAlgorithm` locality contract
//! (a node's outgoing messages depend only on its own previous inbox and
//! randomness): the executor builds one full payload instance per node,
//! feeds instance `v` only the arcs into `v`, harvests only the arcs out of
//! `v`, and reads `outputs()[v]` — so instances never need to share state
//! across host threads.
//!
//! ```
//! use async_exec::{AsyncExecutor, ScheduleDef};
//! use congest_sim::algorithm::run_on_network;
//! use congest_sim::network::Network;
//! use congest_sim::scenario::{doctest_payload, Compiler};
//! use netgraph::generators;
//!
//! let g = generators::grid(3, 3);
//! // Lockstep reference …
//! let mut reference = doctest_payload(g.clone());
//! let mut lock_net = Network::fault_free(g.clone());
//! let lock_out = run_on_network(&mut reference, &mut lock_net);
//! // … and the async executor on the synchronous schedule.
//! let mut async_net = Network::fault_free(g.clone());
//! let (out, notes) = AsyncExecutor::new(ScheduleDef::synchronous())
//!     .compile_replayable(&|| Box::new(doctest_payload(g.clone())), &mut async_net)
//!     .unwrap();
//! assert_eq!(out, lock_out);
//! assert_eq!(format!("{:?}", async_net.metrics()), format!("{:?}", lock_net.metrics()));
//! assert_eq!(notes.label(), "async");
//! ```

#![warn(missing_docs)]

use congest_sim::network::Network;
use congest_sim::scenario::{
    validate_role, BoxedAlgorithm, CompileArtifacts, Compiler, CompilerKind, CompilerNotes,
    ScenarioError,
};
use congest_sim::traffic::{Output, Traffic};
use netgraph::{ArcId, Graph, NodeId};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::mpsc;

/// Per-slot base latency, in virtual ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// Zero latency: a slot arrives the tick it is sent (the lockstep twin).
    Synchronous,
    /// Every slot takes exactly `ticks` ticks.
    Fixed {
        /// The fixed delay.
        ticks: u64,
    },
    /// Each slot's delay is drawn uniformly from `min..=max`, hashed from
    /// the run seed, the arc and the sequence number (deterministic, and
    /// independent of the adversary's RNG).
    Uniform {
        /// Smallest delay.
        min: u64,
        /// Largest delay.
        max: u64,
    },
}

impl LatencyModel {
    /// The largest delay this model can assign.
    fn max_delay(&self) -> u64 {
        match *self {
            LatencyModel::Synchronous => 0,
            LatencyModel::Fixed { ticks } => ticks,
            LatencyModel::Uniform { max, .. } => max,
        }
    }
}

/// Which slot contents are lost in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropModel {
    /// Nothing is dropped.
    None,
    /// Every `k`-th *present* message on each arc loses its content (the
    /// slot still arrives — the synchronizer observes the loss, the payload
    /// sees an omission).
    EveryKth {
        /// The drop period (`k >= 1`; `k = 1` drops everything).
        k: u64,
    },
}

/// A temporary network partition: during ticks `from..until`, slots crossing
/// the boundary between `island` and the rest of the graph are held back and
/// arrive when the partition heals (at tick `until`), content intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick of the partition.
    pub from: u64,
    /// First tick after the partition (the heal tick).
    pub until: u64,
    /// The nodes on one side of the cut.
    pub island: Vec<NodeId>,
}

/// A crash-recovery window: the node executes no sends or receives during
/// ticks `from..until`; arrivals queue per-arc FIFO and are consumed after
/// recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First crashed tick.
    pub from: u64,
    /// First tick after recovery.
    pub until: u64,
}

/// The delivery schedule — asynchrony as *data*, alongside `GraphDef` /
/// `AdversaryDef` / `CompilerDef` in the spec layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleDef {
    /// Base latency per slot.
    pub latency: LatencyModel,
    /// Bound on the additional per-slot jitter (`0` = in order across arcs;
    /// per-arc FIFO is always preserved).
    pub reorder_window: u64,
    /// Content-drop schedule.
    pub drops: DropModel,
    /// Partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Crash-recovery windows.
    pub crashes: Vec<CrashWindow>,
}

impl Default for ScheduleDef {
    fn default() -> Self {
        ScheduleDef::synchronous()
    }
}

impl ScheduleDef {
    /// The zero-delay, in-order, loss-free schedule — the lockstep engine's
    /// twin, and the schedule the parity suite pins byte-for-byte.
    pub fn synchronous() -> Self {
        ScheduleDef {
            latency: LatencyModel::Synchronous,
            reorder_window: 0,
            drops: DropModel::None,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Fixed latency of `ticks` (builder-style).
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Set the reorder window (builder-style).
    pub fn with_reorder_window(mut self, window: u64) -> Self {
        self.reorder_window = window;
        self
    }

    /// Set the drop model (builder-style).
    pub fn with_drops(mut self, drops: DropModel) -> Self {
        self.drops = drops;
        self
    }

    /// Add a partition window (builder-style).
    pub fn with_partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Add a crash-recovery window (builder-style).
    pub fn with_crash(mut self, window: CrashWindow) -> Self {
        self.crashes.push(window);
        self
    }

    /// Compact display name: `sync` for the default, otherwise a
    /// comma-joined parameter list (`lat=2,ro=1`, `lat=0..3`, `drop1in5`,
    /// `part1`, `crash1`).
    pub fn display_name(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        match self.latency {
            LatencyModel::Synchronous => {}
            LatencyModel::Fixed { ticks } => parts.push(format!("lat={ticks}")),
            LatencyModel::Uniform { min, max } => parts.push(format!("lat={min}..{max}")),
        }
        if self.reorder_window > 0 {
            parts.push(format!("ro={}", self.reorder_window));
        }
        if let DropModel::EveryKth { k } = self.drops {
            parts.push(format!("drop1in{k}"));
        }
        if !self.partitions.is_empty() {
            parts.push(format!("part{}", self.partitions.len()));
        }
        if !self.crashes.is_empty() {
            parts.push(format!("crash{}", self.crashes.len()));
        }
        if parts.is_empty() {
            "sync".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Validate the schedule against a graph of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if let LatencyModel::Uniform { min, max } = self.latency {
            if min > max {
                return Err(format!("uniform latency has min {min} > max {max}"));
            }
        }
        if let DropModel::EveryKth { k } = self.drops {
            if k == 0 {
                return Err("drop period k must be at least 1".to_string());
            }
        }
        for c in &self.crashes {
            if c.node >= n {
                return Err(format!(
                    "crash window names node {} of a {n}-node graph",
                    c.node
                ));
            }
            if c.from > c.until {
                return Err(format!(
                    "crash window for node {} has from {} > until {}",
                    c.node, c.from, c.until
                ));
            }
        }
        for p in &self.partitions {
            if p.from > p.until {
                return Err(format!(
                    "partition window has from {} > until {}",
                    p.from, p.until
                ));
            }
            if let Some(&v) = p.island.iter().find(|&&v| v >= n) {
                return Err(format!(
                    "partition island names node {v} of a {n}-node graph"
                ));
            }
        }
        Ok(())
    }

    /// Whether `node` is crashed at tick `t`.
    fn crashed(&self, node: NodeId, t: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && c.from <= t && t < c.until)
    }

    /// The delay assigned to sequence number `seq` on `arc`, hashed from the
    /// run seed (never from the adversary's corruption RNG).
    fn delay(&self, run_seed: u64, arc: ArcId, seq: usize) -> u64 {
        let h = mix(run_seed
            .wrapping_add((arc as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((seq as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)));
        let base = match self.latency {
            LatencyModel::Synchronous => 0,
            LatencyModel::Fixed { ticks } => ticks,
            LatencyModel::Uniform { min, max } => min + h % (max - min + 1),
        };
        let jitter = if self.reorder_window == 0 {
            0
        } else {
            mix(h ^ 0xD6E8_FEB8_6659_FD93) % (self.reorder_window + 1)
        };
        base + jitter
    }

    /// Push `arrival` of a slot on the arc `(u, v)` past every partition
    /// window whose cut the arc crosses, until it lands outside all of them.
    fn partition_heal(&self, (u, v): (NodeId, NodeId), mut arrival: u64) -> u64 {
        if self.partitions.is_empty() {
            return arrival;
        }
        // A heal can land the slot inside a later window; iterate to a fixed
        // point (each pass can only move the arrival forward).
        for _ in 0..=self.partitions.len() {
            let mut moved = false;
            for p in &self.partitions {
                let crosses = p.island.contains(&u) != p.island.contains(&v);
                if crosses && p.from <= arrival && arrival < p.until {
                    arrival = p.until;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        arrival
    }

    /// An upper bound on the virtual time a well-formed run can need: past
    /// it the event loop gives up and reports the unfinished nodes.
    fn horizon(&self, rounds: usize) -> u64 {
        let max_delay = self.latency.max_delay() + self.reorder_window;
        let crash_tail = self.crashes.iter().map(|c| c.until).max().unwrap_or(0);
        let part_tail = self.partitions.iter().map(|p| p.until).max().unwrap_or(0);
        (rounds as u64 + 1) * (max_delay + 1) + crash_tail + part_tail + 64
    }
}

/// SplitMix64 finalizer: the per-slot hash behind latency and jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the drop model decides for the `count`-th present message on an arc
/// (1-based).
fn should_drop(drops: DropModel, count: u64) -> bool {
    match drops {
        DropModel::None => false,
        DropModel::EveryKth { k } => count.is_multiple_of(k),
    }
}

/// The asynchronous virtual-time executor, pluggable anywhere a
/// [`Compiler`] fits (the `Scenario` builder, campaign grids, specs).
///
/// `kind()` is [`CompilerKind::Baseline`]: like
/// `congest_sim::scenario::Uncompiled`, it adds no defence of its own and
/// runs under byzantine and eavesdropping adversaries alike.  It needs fresh
/// payload instances (one per node), so it must be driven through
/// [`Compiler::compile_replayable`] — the single-instance
/// [`Compiler::compile`] entry point returns
/// [`ScenarioError::ReplayRequired`].  The `Scenario` pipeline always uses
/// the replayable entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncExecutor {
    schedule: ScheduleDef,
    hosts: usize,
}

impl AsyncExecutor {
    /// An executor driving `schedule`, with the host-thread count chosen
    /// from the machine (results never depend on it).
    pub fn new(schedule: ScheduleDef) -> Self {
        AsyncExecutor { schedule, hosts: 0 }
    }

    /// Pin the number of host threads the nodes are multiplexed onto
    /// (clamped to the node count; `0` = automatic).  Changing this never
    /// changes any byte of the results — pinned by the determinism tests.
    pub fn with_hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// The schedule this executor drives.
    pub fn schedule(&self) -> &ScheduleDef {
        &self.schedule
    }
}

/// One arc's slot content: a present payload or an explicit absence.
type ArcSlot = (ArcId, Option<Vec<u64>>);

/// One node's receive order: `(node, round, inbox slots)`.
type ReceiveJob = (NodeId, usize, Vec<ArcSlot>);

/// One in-flight slot: a round's message (or explicit absence) on one arc.
struct SlotMsg {
    arc: ArcId,
    seq: usize,
    payload: Option<Vec<u64>>,
}

/// Work orders from the virtual-time scheduler to a host process.
enum HostRequest {
    /// Execute `send_into(round)` on each named node's instance and return
    /// the slots on its out-arcs.
    Send {
        /// `(node, round)` jobs.
        jobs: Vec<(NodeId, usize)>,
    },
    /// Deliver each inbox (post-corruption) and execute `receive(round)`.
    Receive {
        /// `(node, round, inbox slots)` jobs.
        jobs: Vec<ReceiveJob>,
    },
    /// Return every hosted node's output and shut down.
    Harvest,
}

/// Replies from a host process back to the scheduler.
enum HostReply {
    /// Out-arc slots per sent node.
    Sent(Vec<(NodeId, Vec<ArcSlot>)>),
    /// Acknowledgement that a batch of receive jobs completed.
    Received,
    /// `(node, output)` pairs for every hosted node.
    Harvested(Vec<(NodeId, Output)>),
}

/// The body of one host process: owns a set of node instances, executes
/// send/receive orders against a private [`Traffic`] buffer, and answers on
/// the shared reply channel.
fn host_loop(
    g: Graph,
    mut instances: Vec<(NodeId, BoxedAlgorithm)>,
    rx: mpsc::Receiver<HostRequest>,
    reply: mpsc::Sender<HostReply>,
) {
    let mut buf = Traffic::new(&g);
    while let Ok(req) = rx.recv() {
        match req {
            HostRequest::Send { jobs } => {
                let mut batches = Vec::with_capacity(jobs.len());
                for (node, round) in jobs {
                    let inst = instances
                        .iter_mut()
                        .find(|(v, _)| *v == node)
                        .expect("send job routed to the wrong host");
                    // The instance writes the whole graph's round; only the
                    // arcs out of its own node are harvested (the locality
                    // contract makes the rest redundant).
                    inst.1.send_into(round, &mut buf);
                    let slots: Vec<ArcSlot> = g
                        .csr()
                        .neighbors(node)
                        .iter()
                        .map(|e| (e.arc_out, buf.get_arc(e.arc_out).map(|p| p.to_vec())))
                        .collect();
                    batches.push((node, slots));
                }
                let _ = reply.send(HostReply::Sent(batches));
            }
            HostRequest::Receive { jobs } => {
                for (node, round, inbox) in jobs {
                    buf.begin_round(&g);
                    for (arc, payload) in &inbox {
                        if let Some(p) = payload {
                            buf.set_arc(*arc, Some(p));
                        }
                    }
                    let inst = instances
                        .iter_mut()
                        .find(|(v, _)| *v == node)
                        .expect("receive job routed to the wrong host");
                    inst.1.receive(round, &buf);
                }
                let _ = reply.send(HostReply::Received);
            }
            HostRequest::Harvest => {
                let outputs = instances
                    .iter()
                    .map(|(v, inst)| (*v, inst.outputs().swap_remove(*v)))
                    .collect();
                let _ = reply.send(HostReply::Harvested(outputs));
                break;
            }
        }
    }
}

impl Compiler for AsyncExecutor {
    fn name(&self) -> String {
        format!("async({})", self.schedule.display_name())
    }

    fn kind(&self) -> CompilerKind {
        CompilerKind::Baseline
    }

    fn compile(
        &self,
        _payload: BoxedAlgorithm,
        _net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        Err(ScenarioError::ReplayRequired {
            compiler: self.name(),
        })
    }

    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        // The executor derives everything per run from the schedule and the
        // run seed; only the warmed graph is seed-independent.
        let _ = tracer;
        Ok(CompileArtifacts::graph_only(graph))
    }

    fn execute_replayable(
        &self,
        artifacts: &CompileArtifacts,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let _ = artifacts;
        self.compile_replayable(make, net)
    }

    fn compile_replayable(
        &self,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        self.validate(net.graph(), net.role())?;
        let g = net.graph().clone();
        let n = g.node_count();
        if n == 0 {
            return Ok((Vec::new(), CompilerNotes::None));
        }
        let run_seed = net.run_seed();
        let schedule = &self.schedule;

        // One full payload instance per node (the locality contract makes
        // per-node sharding exact; see the module docs).
        let mut instances: Vec<BoxedAlgorithm> = (0..n).map(|_| make()).collect();
        let rounds = instances[0].rounds();

        let host_count = if self.hosts == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(n)
        } else {
            self.hosts.min(n)
        };
        let mut per_host: Vec<Vec<(NodeId, BoxedAlgorithm)>> =
            (0..host_count).map(|_| Vec::new()).collect();
        for (v, inst) in instances.drain(..).enumerate().rev() {
            per_host[v % host_count].push((v, inst));
        }
        let host_of = |v: NodeId| v % host_count;

        let arc_count = g.arc_count();
        let mut arc_ends: Vec<(NodeId, NodeId)> = vec![(0, 0); arc_count];
        for v in 0..n {
            for e in g.csr().neighbors(v) {
                arc_ends[e.arc_out] = (v, e.neighbor);
            }
        }

        let (reply_tx, reply_rx) = mpsc::channel::<HostReply>();
        let mut outcome: Option<(Vec<Output>, CompilerNotes)> = None;
        std::thread::scope(|scope| {
            let mut req_txs: Vec<mpsc::Sender<HostRequest>> = Vec::with_capacity(host_count);
            for insts in per_host.drain(..) {
                let (tx, rx) = mpsc::channel::<HostRequest>();
                req_txs.push(tx);
                let graph = g.clone();
                let reply = reply_tx.clone();
                scope.spawn(move || host_loop(graph, insts, rx, reply));
            }

            // Scheduler state: per-node round cursors, per-arc FIFO
            // bookkeeping, the in-flight event queue and the per-arc queues
            // of arrived (post-corruption) slots awaiting consumption.
            let mut next_send = vec![0usize; n];
            let mut next_recv = vec![0usize; n];
            let mut last_arrival: Vec<Option<u64>> = vec![None; arc_count];
            let mut present_count: Vec<u64> = vec![0; arc_count];
            let mut in_flight: BTreeMap<u64, Vec<SlotMsg>> = BTreeMap::new();
            let mut arrived: Vec<VecDeque<(usize, Option<Vec<u64>>)>> =
                vec![VecDeque::new(); arc_count];
            let mut exchange_buf = Traffic::new(&g);

            let (mut exchanges, mut delivered, mut dropped, mut delayed) =
                (0usize, 0usize, 0usize, 0usize);
            let horizon = schedule.horizon(rounds);
            let mut ticks_used: u64 = 0;
            let mut t: u64 = 0;
            // Crash/recover events fire once per window even though idle
            // ticks are skipped; all tracing happens on this scheduler
            // thread, so streams never depend on the host count.
            let mut crash_emitted = vec![false; schedule.crashes.len()];
            let mut recover_emitted = vec![false; schedule.crashes.len()];

            // Fan a job list out to the hosts and merge the replies (sorted
            // by node, so the result is independent of the host count).
            let dispatch_sends = |jobs: &[(NodeId, usize)],
                                  req_txs: &[mpsc::Sender<HostRequest>]|
             -> Vec<(NodeId, Vec<ArcSlot>)> {
                let mut per: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); host_count];
                for &(v, r) in jobs {
                    per[host_of(v)].push((v, r));
                }
                let mut waiting = 0usize;
                for (h, batch) in per.into_iter().enumerate() {
                    if !batch.is_empty() {
                        req_txs[h]
                            .send(HostRequest::Send { jobs: batch })
                            .expect("host process alive");
                        waiting += 1;
                    }
                }
                let mut merged = Vec::with_capacity(jobs.len());
                for _ in 0..waiting {
                    match reply_rx.recv().expect("host process alive") {
                        HostReply::Sent(batches) => merged.extend(batches),
                        _ => unreachable!("send phase got a non-send reply"),
                    }
                }
                merged.sort_by_key(|(v, _)| *v);
                merged
            };

            while (0..n).any(|v| next_recv[v] < rounds) && t <= horizon {
                if net.tracer_mut().is_enabled() {
                    net.tracer_mut().set_time(t);
                    for (i, c) in schedule.crashes.iter().enumerate() {
                        if !crash_emitted[i] && t >= c.from {
                            crash_emitted[i] = true;
                            net.tracer_mut()
                                .point(obs::EventKind::NodeCrash { node: c.node });
                        }
                        if !recover_emitted[i] && t >= c.until {
                            recover_emitted[i] = true;
                            net.tracer_mut()
                                .point(obs::EventKind::NodeRecover { node: c.node });
                        }
                    }
                }
                // -- send phase: every live node that has consumed its
                // previous round fires its next one on its host process.
                let send_jobs: Vec<(NodeId, usize)> = (0..n)
                    .filter(|&v| {
                        !schedule.crashed(v, t)
                            && next_send[v] < rounds
                            && next_send[v] == next_recv[v]
                    })
                    .map(|v| (v, next_send[v]))
                    .collect();
                let sent = if send_jobs.is_empty() {
                    Vec::new()
                } else {
                    dispatch_sends(&send_jobs, &req_txs)
                };
                for (v, slots) in sent {
                    let seq = next_send[v];
                    next_send[v] += 1;
                    for (arc, mut payload) in slots {
                        if payload.is_some() {
                            present_count[arc] += 1;
                            if should_drop(schedule.drops, present_count[arc]) {
                                payload = None;
                                dropped += 1;
                                net.tracer_mut().point(obs::EventKind::SlotDropped { arc });
                            }
                        }
                        let mut arrival = t + schedule.delay(run_seed, arc, seq);
                        arrival = schedule.partition_heal(arc_ends[arc], arrival);
                        if let Some(last) = last_arrival[arc] {
                            arrival = arrival.max(last + 1); // per-arc FIFO
                        }
                        last_arrival[arc] = Some(arrival);
                        if arrival > t {
                            delayed += 1;
                            net.tracer_mut().point(obs::EventKind::SlotDelayed { arc });
                        }
                        in_flight
                            .entry(arrival)
                            .or_default()
                            .push(SlotMsg { arc, seq, payload });
                    }
                }

                // -- exchange phase: this tick's arrivals cross the (adver-
                // sarial) network in one exchange, exactly as a lockstep
                // round would.  Send-only ticks still exchange (an empty
                // round is still a round the adversary acts in).
                let arriving = in_flight.remove(&t).unwrap_or_default();
                let had_arrivals = !arriving.is_empty();
                if !send_jobs.is_empty() || had_arrivals {
                    exchanges += 1;
                    ticks_used = t + 1;
                    exchange_buf.begin_round(&g);
                    for m in &arriving {
                        if let Some(p) = &m.payload {
                            exchange_buf.set_arc(m.arc, Some(p));
                        }
                    }
                    net.exchange_in_place(&mut exchange_buf);
                    // The exchange stamps its events with the network round;
                    // slot events go back on the tick clock.
                    net.tracer_mut().set_time(t);
                    for m in arriving {
                        // Re-read the post-exchange state whatever the slot
                        // carried before: a byzantine adversary can rewrite,
                        // fabricate onto an empty slot, or delete outright.
                        let payload = exchange_buf.get_arc(m.arc).map(|p| p.to_vec());
                        if payload.is_some() {
                            delivered += 1;
                            net.tracer_mut()
                                .point(obs::EventKind::SlotDelivered { arc: m.arc });
                        }
                        arrived[m.arc].push_back((m.seq, payload));
                    }
                }

                // -- receive phase: nodes whose next round's slot has
                // arrived on every in-arc consume the round.
                let mut recv_jobs: Vec<ReceiveJob> = Vec::new();
                for v in 0..n {
                    if schedule.crashed(v, t) || next_recv[v] >= next_send[v] {
                        continue;
                    }
                    let r = next_recv[v];
                    let ready = g
                        .csr()
                        .neighbors(v)
                        .iter()
                        .all(|e| arrived[e.arc_in].front().is_some_and(|(s, _)| *s == r));
                    if !ready {
                        continue;
                    }
                    let inbox: Vec<ArcSlot> = g
                        .csr()
                        .neighbors(v)
                        .iter()
                        .map(|e| {
                            let (seq, payload) =
                                arrived[e.arc_in].pop_front().expect("checked above");
                            debug_assert_eq!(seq, r, "per-arc FIFO violated");
                            (e.arc_in, payload)
                        })
                        .collect();
                    recv_jobs.push((v, r, inbox));
                }
                let had_receives = !recv_jobs.is_empty();
                if had_receives {
                    ticks_used = t + 1;
                    let mut per: Vec<Vec<ReceiveJob>> = vec![Vec::new(); host_count];
                    for job in recv_jobs {
                        next_recv[job.0] += 1;
                        per[host_of(job.0)].push(job);
                    }
                    let mut waiting = 0usize;
                    for (h, batch) in per.into_iter().enumerate() {
                        if !batch.is_empty() {
                            req_txs[h]
                                .send(HostRequest::Receive { jobs: batch })
                                .expect("host process alive");
                            waiting += 1;
                        }
                    }
                    for _ in 0..waiting {
                        match reply_rx.recv().expect("host process alive") {
                            HostReply::Received => {}
                            _ => unreachable!("receive phase got a non-receive reply"),
                        }
                    }
                }

                // -- advance the clock.  After a fully idle tick nothing can
                // happen until the next in-flight arrival or the next crash
                // recovery, so jump straight there (and if neither exists,
                // the run is wedged — leave the loop to report it).
                if send_jobs.is_empty() && !had_arrivals && !had_receives {
                    let next_arrival = in_flight.keys().next().copied();
                    let next_recovery = schedule
                        .crashes
                        .iter()
                        .map(|c| c.until)
                        .filter(|&u| u > t)
                        .min();
                    t = match (next_arrival, next_recovery) {
                        (Some(a), Some(r)) => a.min(r).max(t + 1),
                        (Some(a), None) => a.max(t + 1),
                        (None, Some(r)) => r.max(t + 1),
                        (None, None) => break,
                    };
                } else {
                    t += 1;
                }
            }

            // -- harvest: every host returns its nodes' outputs.
            for tx in &req_txs {
                tx.send(HostRequest::Harvest).expect("host process alive");
            }
            let mut harvested: Vec<(NodeId, Output)> = Vec::with_capacity(n);
            for _ in 0..host_count {
                match reply_rx.recv().expect("host process alive") {
                    HostReply::Harvested(outs) => harvested.extend(outs),
                    _ => unreachable!("harvest got a non-harvest reply"),
                }
            }
            harvested.sort_by_key(|(v, _)| *v);
            let outputs: Vec<Output> = harvested.into_iter().map(|(_, o)| o).collect();

            let unfinished = (0..n).filter(|&v| next_recv[v] < rounds).count();
            outcome = Some((
                outputs,
                CompilerNotes::Async {
                    ticks: ticks_used as usize,
                    exchanges,
                    delivered_slots: delivered,
                    dropped_slots: dropped,
                    delayed_slots: delayed,
                    completed: unfinished == 0,
                    unfinished_nodes: unfinished,
                },
            ));
        });
        Ok(outcome.expect("scheduler scope always produces an outcome"))
    }

    fn validate(
        &self,
        graph: &Graph,
        role: congest_sim::adversary::AdversaryRole,
    ) -> Result<(), ScenarioError> {
        validate_role(self, role)?;
        self.schedule
            .validate(graph.node_count())
            .map_err(|reason| ScenarioError::InvalidParameter {
                compiler: self.name(),
                reason,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_algorithms::{FloodBroadcast, LeaderElection};
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
    use congest_sim::algorithm::run_on_network;
    use netgraph::generators;

    fn adversarial_net(g: &Graph, seed: u64) -> Network {
        Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(1, seed)),
            CorruptionBudget::Mobile { f: 1 },
            seed,
        )
    }

    #[test]
    fn synchronous_schedule_matches_lockstep_byte_for_byte() {
        let g = generators::grid(3, 4);
        let make =
            || -> BoxedAlgorithm { Box::new(FloodBroadcast::new(generators::grid(3, 4), 0, 99)) };

        let mut lock_net = adversarial_net(&g, 11);
        let mut reference = make();
        let lock_out = run_on_network(&mut *reference, &mut lock_net);

        let mut async_net = adversarial_net(&g, 11);
        let (out, notes) = AsyncExecutor::new(ScheduleDef::synchronous())
            .with_hosts(3)
            .compile_replayable(&make, &mut async_net)
            .unwrap();

        assert_eq!(out, lock_out);
        assert_eq!(
            format!("{:?}", async_net.metrics()),
            format!("{:?}", lock_net.metrics())
        );
        assert_eq!(
            format!("{:?}", async_net.corruption_history()),
            format!("{:?}", lock_net.corruption_history())
        );
        match notes {
            CompilerNotes::Async {
                ticks,
                exchanges,
                completed,
                dropped_slots,
                delayed_slots,
                ..
            } => {
                assert_eq!(ticks, reference.rounds());
                assert_eq!(exchanges, reference.rounds());
                assert!(completed);
                assert_eq!(dropped_slots, 0);
                assert_eq!(delayed_slots, 0);
            }
            other => panic!("expected async notes, got {other:?}"),
        }
    }

    #[test]
    fn host_count_never_changes_a_byte() {
        let g = generators::circulant(10, 2);
        let schedule = ScheduleDef::synchronous()
            .with_latency(LatencyModel::Uniform { min: 0, max: 3 })
            .with_reorder_window(2);
        let make =
            || -> BoxedAlgorithm { Box::new(LeaderElection::new(generators::circulant(10, 2))) };
        let mut baseline = None;
        for hosts in [1, 2, 8] {
            let mut net = adversarial_net(&g, 7);
            let result = AsyncExecutor::new(schedule.clone())
                .with_hosts(hosts)
                .compile_replayable(&make, &mut net)
                .unwrap();
            let bytes = format!(
                "{result:?}/{:?}/{:?}",
                net.metrics(),
                net.corruption_history()
            );
            match &baseline {
                None => baseline = Some(bytes),
                Some(b) => assert_eq!(&bytes, b, "host count {hosts} diverged"),
            }
        }
    }

    #[test]
    fn fixed_latency_delays_but_preserves_outputs_without_an_adversary() {
        let g = generators::grid(3, 3);
        let make =
            || -> BoxedAlgorithm { Box::new(FloodBroadcast::new(generators::grid(3, 3), 0, 5)) };
        let mut expected = make();
        let expected_rounds = expected.rounds();
        let fault_free = congest_sim::algorithm::run_fault_free(&mut *expected);

        let mut net = Network::fault_free(g.clone());
        let (out, notes) = AsyncExecutor::new(
            ScheduleDef::synchronous().with_latency(LatencyModel::Fixed { ticks: 2 }),
        )
        .compile_replayable(&make, &mut net)
        .unwrap();
        assert_eq!(out, fault_free);
        match notes {
            CompilerNotes::Async {
                ticks,
                delayed_slots,
                completed,
                ..
            } => {
                assert!(completed);
                assert!(ticks > expected_rounds, "latency must stretch virtual time");
                assert!(delayed_slots > 0);
            }
            other => panic!("expected async notes, got {other:?}"),
        }
    }

    #[test]
    fn crash_recovery_stalls_then_completes_and_agrees() {
        let g = generators::grid(3, 3);
        let make =
            || -> BoxedAlgorithm { Box::new(FloodBroadcast::new(generators::grid(3, 3), 0, 5)) };
        let mut expected = make();
        let fault_free = congest_sim::algorithm::run_fault_free(&mut *expected);

        let mut net = Network::fault_free(g.clone());
        let (out, notes) = AsyncExecutor::new(ScheduleDef::synchronous().with_crash(CrashWindow {
            node: 4,
            from: 1,
            until: 5,
        }))
        .compile_replayable(&make, &mut net)
        .unwrap();
        assert_eq!(out, fault_free, "a healed crash loses no content");
        match notes {
            CompilerNotes::Async {
                ticks, completed, ..
            } => {
                assert!(completed);
                assert!(ticks >= 5, "the crash window must stall virtual time");
            }
            other => panic!("expected async notes, got {other:?}"),
        }
    }

    #[test]
    fn drops_are_counted_and_propagation_suffers() {
        let g = generators::grid(3, 3);
        let make =
            || -> BoxedAlgorithm { Box::new(FloodBroadcast::new(generators::grid(3, 3), 0, 5)) };
        let mut expected = make();
        let fault_free = congest_sim::algorithm::run_fault_free(&mut *expected);
        let mut net = Network::fault_free(g.clone());
        // FloodBroadcast forwards once per arc, so `k = 1` (drop everything)
        // is the schedule that actually bites.
        let (out, notes) =
            AsyncExecutor::new(ScheduleDef::synchronous().with_drops(DropModel::EveryKth { k: 1 }))
                .compile_replayable(&make, &mut net)
                .unwrap();
        assert_ne!(out, fault_free, "total loss must stop the broadcast");
        match notes {
            CompilerNotes::Async {
                dropped_slots,
                completed,
                ..
            } => {
                assert!(dropped_slots > 0);
                assert!(completed, "drops lose content, never synchronization");
            }
            other => panic!("expected async notes, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        let g = generators::grid(3, 3);
        let bad_crash = AsyncExecutor::new(ScheduleDef::synchronous().with_crash(CrashWindow {
            node: 99,
            from: 0,
            until: 1,
        }));
        assert!(matches!(
            bad_crash.validate(&g, AdversaryRole::Byzantine),
            Err(ScenarioError::InvalidParameter { .. })
        ));
        let bad_latency = AsyncExecutor::new(
            ScheduleDef::synchronous().with_latency(LatencyModel::Uniform { min: 3, max: 1 }),
        );
        assert!(matches!(
            bad_latency.validate(&g, AdversaryRole::Eavesdropper),
            Err(ScenarioError::InvalidParameter { .. })
        ));
        assert!(AsyncExecutor::new(ScheduleDef::synchronous())
            .validate(&g, AdversaryRole::Eavesdropper)
            .is_ok());
    }

    #[test]
    fn display_names_are_compact_and_distinct() {
        assert_eq!(ScheduleDef::synchronous().display_name(), "sync");
        assert_eq!(
            ScheduleDef::synchronous()
                .with_latency(LatencyModel::Fixed { ticks: 2 })
                .with_reorder_window(1)
                .display_name(),
            "lat=2,ro=1"
        );
        assert_eq!(
            AsyncExecutor::new(ScheduleDef::synchronous().with_drops(DropModel::EveryKth { k: 5 }))
                .name(),
            "async(drop1in5)"
        );
    }

    #[test]
    fn single_instance_entry_point_requires_replay() {
        let g = generators::grid(3, 3);
        let mut net = Network::fault_free(g.clone());
        let err = AsyncExecutor::new(ScheduleDef::synchronous())
            .compile(Box::new(FloodBroadcast::new(g, 0, 5)), &mut net)
            .unwrap_err();
        assert!(matches!(err, ScenarioError::ReplayRequired { .. }));
    }
}
