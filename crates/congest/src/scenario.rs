//! The unified `Scenario` execution API: one typed pipeline for
//! graph × payload × adversary × compiler.
//!
//! Every experiment in this reproduction answers the same question — *run
//! payload `P` on graph `G` under adversary `A` through compiler `C`; did the
//! output survive, and at what cost?*  Before this module, each call site
//! hand-wired a [`Network`], a per-compiler entry point and an ad-hoc results
//! table.  A [`Scenario`] expresses the whole pipeline fluently:
//!
//! ```
//! use congest_sim::scenario::{Scenario, Uncompiled};
//! use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
//! use netgraph::generators;
//!
//! let report = Scenario::on(generators::complete(8))
//!     .payload(|| congest_sim::scenario::doctest_payload(generators::complete(8)))
//!     .adversary(
//!         AdversaryRole::Byzantine,
//!         RandomMobile::new(1, 7),
//!         CorruptionBudget::Mobile { f: 1 },
//!     )
//!     .seed(7)
//!     .compiled_with(Uncompiled)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.payload_rounds, 1);
//! ```
//!
//! The pieces:
//!
//! * [`Compiler`] — the object-safe interface every compiler implements
//!   (thin adapters in `mobile-congest-core` wrap the paper's seven
//!   compilers; [`Uncompiled`] and [`FaultFree`] live here);
//! * [`ScenarioBuilder`] — fluent configuration, validated when
//!   [`ScenarioBuilder::build`] (or `run`) is called: an eavesdropper paired
//!   with a resilience compiler is a typed [`ScenarioError`], not a silent
//!   misrun;
//! * [`RunReport`] — outputs plus round/bandwidth/corruption metrics, the
//!   compiler's typed [`CompilerNotes`], the eavesdropper's [`ViewLog`] and
//!   the fault-free-agreement verdict;
//! * [`CompilerNotes`] — the typed diagnostics channel (rewind counts,
//!   correction verdicts, key rounds, packing quality) threaded from every
//!   compiler through [`Compiler::compile`] onto the report;
//! * [`matrix`] — sweeps graph-family × adversary-strategy × compiler grids
//!   in one call (single-threaded facade over the cells the parallel
//!   `harness::Campaign` engine drives).

use crate::adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget, NoAdversary};
use crate::algorithm::{run_fault_free, run_on_network, CongestAlgorithm};
use crate::metrics::Metrics;
use crate::network::{Network, ViewLog};
use crate::traffic::Output;
use netgraph::Graph;

/// A payload algorithm behind a uniform pointer type.
///
/// The `Send` bound lets executors move payload instances onto worker
/// threads (the async runtime hosts one instance per node); every payload in
/// the tree is plain data, so the bound costs nothing.
pub type BoxedAlgorithm = Box<dyn CongestAlgorithm + Send>;

/// A factory producing fresh payload instances (compilers that rewind or
/// compare against a fault-free reference need more than one).
pub type PayloadFactory = Box<dyn Fn() -> BoxedAlgorithm>;

/// Everything that can go wrong when configuring or executing a scenario.
///
/// This enum unifies what used to be scattered panics (`CliqueCompiler::new`
/// on a non-clique), `Option` returns (`CycleCoverCompiler::new`) and silent
/// misconfigurations (running a secrecy compiler under a byzantine adversary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The graph has no nodes.
    EmptyGraph,
    /// No payload factory was supplied.
    MissingPayload,
    /// The compiler does not defend against this adversary role (e.g. a
    /// resilience compiler under an eavesdropper, or a secrecy compiler under
    /// a byzantine adversary).
    RoleMismatch {
        /// The compiler's display name.
        compiler: String,
        /// What the compiler defends against.
        kind: CompilerKind,
        /// The configured role.
        role: AdversaryRole,
    },
    /// The compiler cannot run on this graph (wrong family, too sparse, …).
    UnsupportedGraph {
        /// The compiler's display name.
        compiler: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// The graph's edge connectivity is below what the compiler requires.
    InsufficientConnectivity {
        /// The compiler's display name.
        compiler: String,
        /// Required edge connectivity.
        needed: usize,
        /// Actual edge connectivity.
        found: usize,
    },
    /// The compiler needs a replayable payload (a factory), but was invoked
    /// through the single-instance [`Compiler::compile`] entry point.
    ReplayRequired {
        /// The compiler's display name.
        compiler: String,
    },
    /// A parameter combination the compiler rejects.
    InvalidParameter {
        /// The compiler's display name.
        compiler: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// The compiled execution ran but did not complete its contract (e.g. the
    /// rewind compiler ran out of global rounds before committing every
    /// payload round).
    IncompleteRun {
        /// The compiler's display name.
        compiler: String,
        /// Human-readable explanation.
        detail: String,
    },
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::EmptyGraph => write!(f, "the scenario graph has no nodes"),
            ScenarioError::MissingPayload => write!(f, "no payload algorithm was configured"),
            ScenarioError::RoleMismatch {
                compiler,
                kind,
                role,
            } => write!(
                f,
                "compiler `{compiler}` ({kind:?}) does not defend against a {role:?} adversary"
            ),
            ScenarioError::UnsupportedGraph { compiler, reason } => {
                write!(f, "compiler `{compiler}` cannot run on this graph: {reason}")
            }
            ScenarioError::InsufficientConnectivity {
                compiler,
                needed,
                found,
            } => write!(
                f,
                "compiler `{compiler}` needs edge connectivity >= {needed}, graph has {found}"
            ),
            ScenarioError::ReplayRequired { compiler } => write!(
                f,
                "compiler `{compiler}` must be driven through a payload factory (compile_replayable)"
            ),
            ScenarioError::InvalidParameter { compiler, reason } => {
                write!(f, "compiler `{compiler}` rejected its parameters: {reason}")
            }
            ScenarioError::IncompleteRun { compiler, detail } => {
                write!(f, "compiler `{compiler}` did not complete: {detail}")
            }
        }
    }
}

impl ScenarioError {
    /// Whether this error is a *configuration-time* rejection (role mismatch,
    /// unsupported graph, connectivity shortfall, bad parameter) as opposed
    /// to a runtime failure.  Grid drivers (`matrix::sweep`, the harness
    /// campaign engine) record validation errors as skipped cells, not
    /// failures — keep the classification here so both stay in sync.
    pub fn is_validation_error(&self) -> bool {
        matches!(
            self,
            ScenarioError::RoleMismatch { .. }
                | ScenarioError::UnsupportedGraph { .. }
                | ScenarioError::InsufficientConnectivity { .. }
                | ScenarioError::InvalidParameter { .. }
        )
    }
}

impl std::error::Error for ScenarioError {}

/// What a compiler defends against; drives role validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompilerKind {
    /// No defence at all — the baseline the paper's compilers are measured
    /// against ([`Uncompiled`]).
    Baseline,
    /// Ignores the network entirely ([`FaultFree`] reference runs).
    Reference,
    /// Correctness against byzantine edge corruption (Theorems 1.4–1.7, 3.5).
    Resilient,
    /// Correctness against a bounded round-error *rate* (Theorem 4.1).
    RateResilient,
    /// Secrecy against eavesdropping (Theorems 1.2, 1.3, A.4).
    Secure,
}

impl CompilerKind {
    /// Whether a compiler of this kind is meaningful under the given role.
    pub fn supports(self, role: AdversaryRole) -> bool {
        match self {
            CompilerKind::Baseline | CompilerKind::Reference => true,
            CompilerKind::Resilient | CompilerKind::RateResilient => {
                role == AdversaryRole::Byzantine
            }
            CompilerKind::Secure => role == AdversaryRole::Eavesdropper,
        }
    }
}

/// Typed per-compiler diagnostics, returned from [`Compiler::compile`] and
/// carried on [`RunReport::notes`].
///
/// Every compiler of the paper produces a structured report of *how* the run
/// went — how many rewinds, whether every round was fully corrected, how many
/// rounds were spent exchanging keys, how good the packing built under attack
/// was.  Before this enum the adapters discarded those reports; now the whole
/// channel is typed end to end, so scenario callers (and the `harness`
/// campaign engine) can assert on and aggregate over them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompilerNotes {
    /// The compiler has nothing to report (baseline / reference runs).
    None,
    /// Tree-packing resilient compilers (Theorems 1.6 / 3.5): the correction
    /// trace, summed over the simulated payload rounds, plus the quality of
    /// the packing the run was compiled over (the structural quantities that
    /// predict whether the correction majority can hold).
    Resilient {
        /// Whether every simulated round ended with zero residual mismatches.
        fully_corrected: bool,
        /// Mismatched arcs before correction, summed over rounds.
        mismatches_before: usize,
        /// Mismatched arcs after correction, summed over rounds.
        mismatches_after: usize,
        /// Tree instances that failed during sketch aggregation, summed.
        failed_trees: usize,
        /// Trees in the packing.
        packing_trees: usize,
        /// Spanning, root-anchored trees the correction majority can use.
        packing_good_trees: usize,
        /// Maximum number of trees sharing one host edge — a heaviest-edge
        /// adversary fails all of them at once, so this must stay at or
        /// below the correction code's error capacity.
        packing_max_load: usize,
        /// The smallest max edge load any packing of this size can achieve
        /// on this graph (`⌈k(n−1)/m⌉`).
        packing_load_floor: usize,
        /// Tree-edge slots crossing one minimum edge cut of the graph.
        packing_min_cut_usage: usize,
    },
    /// The expander compiler (Theorem 1.7): quality of the packing built
    /// while under attack, plus the correction verdict.
    Expander {
        /// Colour classes / candidate trees built.
        trees: usize,
        /// Trees that came out spanning within the depth budget.
        good_trees: usize,
        /// Network rounds spent building the packing.
        packing_rounds: usize,
        /// Whether every simulated round ended fully corrected.
        fully_corrected: bool,
        /// Residual mismatched arcs, summed over rounds.
        mismatches_after: usize,
    },
    /// The FT-cycle-cover compiler (Theorems 1.4 / 5.5): cover geometry.
    CycleCover {
        /// Edge-disjoint paths per edge (`2f + 1`).
        paths_per_edge: usize,
        /// Dilation of the cover.
        dilation: usize,
        /// Congestion of the cover.
        congestion: usize,
        /// Colour classes processed per simulated round.
        colors: usize,
    },
    /// The rewind compiler (Theorem 4.1): progress bookkeeping.
    Rewind {
        /// Number of rewinds performed.
        rewinds: usize,
        /// Committed simulated rounds at the end.
        committed_rounds: usize,
        /// Global rounds executed.
        global_rounds: usize,
        /// Whether the payload completed all of its rounds.
        completed: bool,
    },
    /// The static→mobile secrecy compiler (Theorem 1.2): phase split.
    Secure {
        /// Rounds spent establishing one-time pads.
        key_rounds: usize,
        /// Rounds spent simulating the payload.
        simulation_rounds: usize,
    },
    /// The asynchronous virtual-time executor (`async_exec`): delivery
    /// bookkeeping of one event-loop run.
    Async {
        /// Virtual ticks the event loop consumed.
        ticks: usize,
        /// Network exchanges executed (equals the payload round count on a
        /// synchronous schedule).
        exchanges: usize,
        /// Present (non-empty-slot) messages delivered to node inboxes.
        delivered_slots: usize,
        /// Messages whose content the drop schedule discarded in flight.
        dropped_slots: usize,
        /// Messages that arrived at a later tick than they were sent.
        delayed_slots: usize,
        /// Whether every node completed all of its payload rounds within the
        /// scheduling horizon.
        completed: bool,
        /// Nodes still short of their final round when the loop ended.
        unfinished_nodes: usize,
    },
    /// The congestion-sensitive secrecy compiler (Theorem 1.3).
    CongestionSensitive {
        /// Rounds of local secret exchange.
        local_key_rounds: usize,
        /// Rounds of global secret exchange.
        global_key_rounds: usize,
        /// Rounds simulating the payload.
        simulation_rounds: usize,
        /// Congestion bound used for the parameters.
        congestion: usize,
    },
}

impl CompilerNotes {
    /// Whether there are no diagnostics.
    pub fn is_none(&self) -> bool {
        matches!(self, CompilerNotes::None)
    }

    /// Stable lowercase label of the variant (JSONL `type` field).
    pub fn label(&self) -> &'static str {
        match self {
            CompilerNotes::None => "none",
            CompilerNotes::Resilient { .. } => "resilient",
            CompilerNotes::Expander { .. } => "expander",
            CompilerNotes::CycleCover { .. } => "cycle-cover",
            CompilerNotes::Rewind { .. } => "rewind",
            CompilerNotes::Secure { .. } => "secure",
            CompilerNotes::Async { .. } => "async",
            CompilerNotes::CongestionSensitive { .. } => "congestion-sensitive",
        }
    }

    /// Whether every simulated round ended fully corrected (resilient-style
    /// compilers only).
    pub fn fully_corrected(&self) -> Option<bool> {
        match self {
            CompilerNotes::Resilient {
                fully_corrected, ..
            }
            | CompilerNotes::Expander {
                fully_corrected, ..
            } => Some(*fully_corrected),
            _ => None,
        }
    }

    /// `(good_trees, trees, max_edge_load)` of the packing the run was
    /// compiled over (tree-packing resilient compilers only).
    pub fn packing_quality(&self) -> Option<(usize, usize, usize)> {
        match self {
            CompilerNotes::Resilient {
                packing_good_trees,
                packing_trees,
                packing_max_load,
                ..
            } => Some((*packing_good_trees, *packing_trees, *packing_max_load)),
            _ => None,
        }
    }

    /// Number of rewinds (rewind compiler only).
    pub fn rewinds(&self) -> Option<usize> {
        match self {
            CompilerNotes::Rewind { rewinds, .. } => Some(*rewinds),
            _ => None,
        }
    }

    /// Total key-exchange rounds (secrecy compilers only).
    pub fn key_rounds(&self) -> Option<usize> {
        match self {
            CompilerNotes::Secure { key_rounds, .. } => Some(*key_rounds),
            CompilerNotes::CongestionSensitive {
                local_key_rounds,
                global_key_rounds,
                ..
            } => Some(local_key_rounds + global_key_rounds),
            _ => None,
        }
    }

    /// One compact `key:value` fragment for results tables (e.g.
    /// `rewinds:3`, `corrected:yes`, `key-rounds:12`).
    pub fn summary(&self) -> String {
        match self {
            CompilerNotes::None => "-".into(),
            CompilerNotes::Resilient {
                fully_corrected,
                mismatches_after,
                packing_good_trees,
                packing_trees,
                packing_max_load,
                ..
            } => {
                let packing =
                    format!("good:{packing_good_trees}/{packing_trees},load:{packing_max_load}");
                if *fully_corrected {
                    format!("corrected:yes,{packing}")
                } else {
                    format!("corrected:NO({mismatches_after} left),{packing}")
                }
            }
            CompilerNotes::Expander {
                trees, good_trees, ..
            } => format!("good-trees:{good_trees}/{trees}"),
            CompilerNotes::CycleCover {
                dilation,
                congestion,
                ..
            } => format!("dil:{dilation},cong:{congestion}"),
            CompilerNotes::Rewind { rewinds, .. } => format!("rewinds:{rewinds}"),
            CompilerNotes::Secure { key_rounds, .. } => format!("key-rounds:{key_rounds}"),
            CompilerNotes::Async {
                ticks,
                dropped_slots,
                completed,
                unfinished_nodes,
                ..
            } => {
                let mut s = format!("ticks:{ticks}");
                if *dropped_slots > 0 {
                    s.push_str(&format!(",dropped:{dropped_slots}"));
                }
                if !completed {
                    s.push_str(&format!(",INCOMPLETE({unfinished_nodes} nodes)"));
                }
                s
            }
            CompilerNotes::CongestionSensitive {
                local_key_rounds,
                global_key_rounds,
                ..
            } => format!("key-rounds:{}", local_key_rounds + global_key_rounds),
        }
    }

    /// The numeric facets of the diagnostics, as stable `(name, value)`
    /// pairs (booleans as 0/1).  This is what campaign-level aggregation
    /// (mean/min/max/p50/p99 over repetitions) runs over.
    pub fn metrics(&self) -> Vec<(&'static str, f64)> {
        fn b(v: bool) -> f64 {
            if v {
                1.0
            } else {
                0.0
            }
        }
        match self {
            CompilerNotes::None => Vec::new(),
            CompilerNotes::Resilient {
                fully_corrected,
                mismatches_before,
                mismatches_after,
                failed_trees,
                packing_trees,
                packing_good_trees,
                packing_max_load,
                packing_load_floor,
                packing_min_cut_usage,
            } => vec![
                ("fully_corrected", b(*fully_corrected)),
                ("mismatches_before", *mismatches_before as f64),
                ("mismatches_after", *mismatches_after as f64),
                ("failed_trees", *failed_trees as f64),
                ("packing_trees", *packing_trees as f64),
                ("packing_good_trees", *packing_good_trees as f64),
                ("packing_max_load", *packing_max_load as f64),
                ("packing_load_floor", *packing_load_floor as f64),
                ("packing_min_cut_usage", *packing_min_cut_usage as f64),
            ],
            CompilerNotes::Expander {
                trees,
                good_trees,
                packing_rounds,
                fully_corrected,
                mismatches_after,
            } => vec![
                ("trees", *trees as f64),
                ("good_trees", *good_trees as f64),
                ("packing_rounds", *packing_rounds as f64),
                ("fully_corrected", b(*fully_corrected)),
                ("mismatches_after", *mismatches_after as f64),
            ],
            CompilerNotes::CycleCover {
                paths_per_edge,
                dilation,
                congestion,
                colors,
            } => vec![
                ("paths_per_edge", *paths_per_edge as f64),
                ("dilation", *dilation as f64),
                ("congestion", *congestion as f64),
                ("colors", *colors as f64),
            ],
            CompilerNotes::Rewind {
                rewinds,
                committed_rounds,
                global_rounds,
                completed,
            } => vec![
                ("rewinds", *rewinds as f64),
                ("committed_rounds", *committed_rounds as f64),
                ("global_rounds", *global_rounds as f64),
                ("completed", b(*completed)),
            ],
            CompilerNotes::Secure {
                key_rounds,
                simulation_rounds,
            } => vec![
                ("key_rounds", *key_rounds as f64),
                ("simulation_rounds", *simulation_rounds as f64),
            ],
            CompilerNotes::Async {
                ticks,
                exchanges,
                delivered_slots,
                dropped_slots,
                delayed_slots,
                completed,
                unfinished_nodes,
            } => vec![
                ("ticks", *ticks as f64),
                ("exchanges", *exchanges as f64),
                ("delivered_slots", *delivered_slots as f64),
                ("dropped_slots", *dropped_slots as f64),
                ("delayed_slots", *delayed_slots as f64),
                ("completed", b(*completed)),
                ("unfinished_nodes", *unfinished_nodes as f64),
            ],
            CompilerNotes::CongestionSensitive {
                local_key_rounds,
                global_key_rounds,
                simulation_rounds,
                congestion,
            } => vec![
                ("local_key_rounds", *local_key_rounds as f64),
                ("global_key_rounds", *global_key_rounds as f64),
                ("simulation_rounds", *simulation_rounds as f64),
                ("congestion", *congestion as f64),
            ],
        }
    }
}

impl core::fmt::Display for CompilerNotes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// Seed-independent products of a compiler's *prepare* phase.
///
/// Everything in here is a pure function of the graph and the compiler's own
/// parameters — never of the run seed or the adversary — so one value can be
/// shared across every `(seed, adversary)` cell of a campaign grid.  The
/// carried graph has its CSR adjacency index forced, so clones of it start
/// warm; compiler-specific state (a tree packing, a prebuilt correction
/// compiler, a cycle cover) rides along as an opaque `Any` payload that the
/// owning compiler downcasts back in [`Compiler::execute`].
pub struct CompileArtifacts {
    graph: Graph,
    payload: Option<std::sync::Arc<dyn std::any::Any + Send + Sync>>,
}

impl CompileArtifacts {
    /// Artifacts that carry only the (CSR-warmed) graph — the default for
    /// compilers whose expensive state depends on the seed or the adversary
    /// (key schedules, under-attack packings).
    pub fn graph_only(graph: &Graph) -> Self {
        let graph = graph.clone();
        let _ = graph.csr();
        CompileArtifacts {
            graph,
            payload: None,
        }
    }

    /// Artifacts carrying a compiler-specific seed-independent payload in
    /// addition to the warmed graph.
    pub fn with_payload<T: std::any::Any + Send + Sync>(graph: &Graph, payload: T) -> Self {
        let mut artifacts = CompileArtifacts::graph_only(graph);
        artifacts.payload = Some(std::sync::Arc::new(payload));
        artifacts
    }

    /// The prepared graph, CSR index already built.  Cloning it clones the
    /// warm index, so per-cell networks skip the CSR rebuild.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Downcast the compiler-specific payload back to its concrete type.
    /// `None` if no payload was stored or the type does not match (e.g. the
    /// artifacts were prepared by a different compiler).
    pub fn payload<T: std::any::Any + Send + Sync>(&self) -> Option<&T> {
        self.payload.as_deref().and_then(|p| p.downcast_ref())
    }
}

impl core::fmt::Debug for CompileArtifacts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CompileArtifacts")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("has_payload", &self.payload.is_some())
            .finish()
    }
}

/// The uniform compiler interface of the scenario pipeline.
///
/// A compiler takes an arbitrary round-by-round CONGEST algorithm and
/// simulates it on the (adversarial) network, returning the payload outputs.
/// Implementations are cheap parameter holders.
///
/// The interface is **two-phase**: [`Compiler::prepare`] builds everything
/// that depends only on the graph and the compiler's parameters (tree
/// packings, covers, prebuilt correction state) into [`CompileArtifacts`],
/// and [`Compiler::execute`] / [`Compiler::execute_replayable`] run the
/// seed/adversary-dependent simulation against those artifacts.  The
/// one-phase [`Compiler::compile`] entry point remains the required method —
/// simple compilers implement only it and inherit prepare/execute defaults
/// that make the two phases behave identically to the single phase, while
/// compilers with an expensive seed-independent prefix override the pair so
/// campaign drivers can cache the artifacts across cells.
pub trait Compiler {
    /// Display name for reports and error messages.
    fn name(&self) -> String;

    /// What the compiler defends against.
    fn kind(&self) -> CompilerKind;

    /// Phase one: build the seed-independent artifacts for `graph`.
    ///
    /// The default returns graph-only artifacts (warm CSR, no payload) —
    /// correct for every compiler, optimal for those whose derived state is
    /// seed- or adversary-dependent.  Overrides must produce a pure function
    /// of `(graph, self)`: campaign drivers key cached artifacts by
    /// `(GraphDef, CompilerDef)` only, and campaign fingerprints must stay
    /// byte-identical whether artifacts are cached or rebuilt per cell.
    /// `tracer` carries phase spans (e.g. [`obs::Phase::Packing`]) when the
    /// scenario traces; cached preparation passes a disabled tracer.
    fn prepare(
        &self,
        graph: &Graph,
        tracer: &mut obs::Tracer,
    ) -> Result<CompileArtifacts, ScenarioError> {
        let _ = tracer;
        Ok(CompileArtifacts::graph_only(graph))
    }

    /// Phase two: execute `payload` on `net` using prepared `artifacts`.
    ///
    /// The default ignores the artifacts and forwards to
    /// [`Compiler::compile`], so single-phase compilers behave identically
    /// under both entry points.  Overrides downcast their payload out of the
    /// artifacts and must fall back to rebuilding it (the artifacts may be
    /// graph-only if prepared by a default `prepare`).
    fn execute(
        &self,
        artifacts: &CompileArtifacts,
        payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        let _ = artifacts;
        self.compile(payload, net)
    }

    /// [`Compiler::execute`] with access to fresh payload instances, for
    /// compilers that re-simulate from a committed prefix.  The default
    /// routes through [`Compiler::execute`] and falls back to
    /// [`Compiler::compile_replayable`] when the compiler demands replay.
    fn execute_replayable(
        &self,
        artifacts: &CompileArtifacts,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        match self.execute(artifacts, make(), net) {
            Err(ScenarioError::ReplayRequired { .. }) => self.compile_replayable(make, net),
            other => other,
        }
    }

    /// Compile and execute `payload` on `net`, returning the payload outputs
    /// together with the compiler's typed diagnostics.
    ///
    /// Implementations re-check the adversary role against [`Network::role`],
    /// but full graph validation runs once in [`Compiler::validate`] (the
    /// `Scenario` pipeline calls it at build time).  When invoking a compiler
    /// directly, call `validate(net.graph(), net.role())` first to get the
    /// typed graph errors.
    fn compile(
        &self,
        payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError>;

    /// Compile and execute with access to fresh payload instances.  Compilers
    /// that re-simulate from a committed prefix (the rewind compiler)
    /// override this; the default forwards one instance to
    /// [`Compiler::compile`].
    fn compile_replayable(
        &self,
        make: &dyn Fn() -> BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        self.compile(make(), net)
    }

    /// Check the configuration before anything runs.  Overrides should call
    /// [`validate_role`] (or repeat its check) in addition to their own
    /// graph/parameter validation.
    fn validate(&self, graph: &Graph, role: AdversaryRole) -> Result<(), ScenarioError> {
        let _ = graph;
        validate_role(self, role)
    }
}

/// The role check every compiler shares: its [`CompilerKind`] must support
/// the configured adversary role.
pub fn validate_role<C: Compiler + ?Sized>(
    compiler: &C,
    role: AdversaryRole,
) -> Result<(), ScenarioError> {
    if compiler.kind().supports(role) {
        Ok(())
    } else {
        Err(ScenarioError::RoleMismatch {
            compiler: compiler.name(),
            kind: compiler.kind(),
            role,
        })
    }
}

/// The no-defence baseline: each payload round is one network round
/// (wraps [`run_on_network`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uncompiled;

impl Compiler for Uncompiled {
    fn name(&self) -> String {
        "uncompiled".into()
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Baseline
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        Ok((run_on_network(&mut *payload, net), CompilerNotes::None))
    }
}

/// The fault-free reference: messages are delivered verbatim without touching
/// the network (wraps [`run_fault_free`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultFree;

impl Compiler for FaultFree {
    fn name(&self) -> String {
        "fault-free".into()
    }
    fn kind(&self) -> CompilerKind {
        CompilerKind::Reference
    }
    fn compile(
        &self,
        mut payload: BoxedAlgorithm,
        _net: &mut Network,
    ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
        Ok((run_fault_free(&mut *payload), CompilerNotes::None))
    }
}

/// Entry point of the fluent pipeline; see the module docs.
pub struct Scenario;

impl Scenario {
    /// Start configuring a scenario on `graph`.
    pub fn on(graph: Graph) -> ScenarioBuilder {
        ScenarioBuilder {
            graph,
            payload: None,
            role: AdversaryRole::Byzantine,
            strategy: None,
            budget: CorruptionBudget::None,
            seed: 0,
            compiler: None,
            bandwidth_words: None,
            check_fault_free: true,
            trace: obs::TraceSpec::off(),
            artifacts: None,
        }
    }
}

/// Fluent configuration for one scenario run.
///
/// Built by [`Scenario::on`]; every setter returns `self`, and
/// [`ScenarioBuilder::build`] / [`ScenarioBuilder::run`] perform the typed
/// validation.
///
/// ```
/// use congest_sim::adversary::{AdversaryRole, CorruptionBudget, EclipseNode};
/// use congest_sim::scenario::{doctest_payload, Scenario};
/// use netgraph::generators;
///
/// // Eclipse node 0 of a torus while running the id-exchange demo payload.
/// let g = generators::torus(3, 4);
/// let payload_graph = g.clone();
/// let report = Scenario::on(g)
///     .payload(move || doctest_payload(payload_graph.clone()))
///     .adversary(
///         AdversaryRole::Byzantine,
///         EclipseNode::new(0, 2),
///         CorruptionBudget::Mobile { f: 2 },
///     )
///     .seed(11)
///     .run()
///     .unwrap();
/// assert_eq!(report.network_rounds, 1);
/// assert_eq!(report.metrics.corrupted_edge_rounds, 2);
/// ```
pub struct ScenarioBuilder {
    graph: Graph,
    payload: Option<PayloadFactory>,
    role: AdversaryRole,
    strategy: Option<Box<dyn AdversaryStrategy>>,
    budget: CorruptionBudget,
    seed: u64,
    compiler: Option<Box<dyn Compiler>>,
    bandwidth_words: Option<usize>,
    check_fault_free: bool,
    trace: obs::TraceSpec,
    artifacts: Option<std::sync::Arc<CompileArtifacts>>,
}

impl ScenarioBuilder {
    /// The payload algorithm, supplied as a factory of fresh instances.
    pub fn payload<A, F>(mut self, make: F) -> Self
    where
        A: CongestAlgorithm + Send + 'static,
        F: Fn() -> A + 'static,
    {
        self.payload = Some(Box::new(move || Box::new(make()) as BoxedAlgorithm));
        self
    }

    /// The payload as a pre-boxed factory (used by generic drivers such as
    /// [`matrix::sweep`]).
    pub fn payload_boxed<F>(mut self, make: F) -> Self
    where
        F: Fn() -> BoxedAlgorithm + 'static,
    {
        self.payload = Some(Box::new(make));
        self
    }

    /// The adversary: role (eavesdropper / byzantine), strategy and budget.
    pub fn adversary<S>(self, role: AdversaryRole, strategy: S, budget: CorruptionBudget) -> Self
    where
        S: AdversaryStrategy + 'static,
    {
        self.adversary_boxed(role, Box::new(strategy), budget)
    }

    /// [`ScenarioBuilder::adversary`] with a pre-boxed strategy.
    pub fn adversary_boxed(
        mut self,
        role: AdversaryRole,
        strategy: Box<dyn AdversaryStrategy>,
        budget: CorruptionBudget,
    ) -> Self {
        self.role = role;
        self.strategy = Some(strategy);
        self.budget = budget;
        self
    }

    /// Seed for the run's randomness (adversary fabrication and, by
    /// convention, node-private randomness derived via [`Network::node_rng`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The compiler to protect the payload with (default: [`Uncompiled`]).
    pub fn compiled_with<C: Compiler + 'static>(self, compiler: C) -> Self {
        self.compiled_with_boxed(Box::new(compiler))
    }

    /// [`ScenarioBuilder::compiled_with`] with a pre-boxed compiler.
    pub fn compiled_with_boxed(mut self, compiler: Box<dyn Compiler>) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// Words per bandwidth-normalised round (see
    /// [`Network::set_bandwidth_words`]).
    pub fn bandwidth_words(mut self, words: usize) -> Self {
        self.bandwidth_words = Some(words);
        self
    }

    /// Whether to also run the payload fault-free and record agreement in the
    /// report (default: on).  Disable for very expensive payloads.
    pub fn check_against_fault_free(mut self, check: bool) -> Self {
        self.check_fault_free = check;
        self
    }

    /// How the run should trace (default: [`obs::TraceSpec::off`], the
    /// single-branch no-op path).  With a ring spec, the compiled execution
    /// emits phase spans and point events into a per-run tracer whose
    /// harvested stream lands on [`RunReport::trace`] — a pure function of
    /// `(scenario, seed)`, byte-identical at any thread or host count.
    pub fn trace(mut self, spec: obs::TraceSpec) -> Self {
        self.trace = spec;
        self
    }

    /// Supply pre-built [`CompileArtifacts`] (typically from a campaign
    /// artifact cache) instead of letting the run call
    /// [`Compiler::prepare`] itself.  The artifacts must have been prepared
    /// by an identically-parameterised compiler on an equal graph — the
    /// contract a `(GraphDef, CompilerDef)`-keyed cache provides by
    /// construction.  The run then uses the artifacts' CSR-warmed graph and
    /// skips the prepare phase entirely.
    pub fn artifacts(mut self, artifacts: std::sync::Arc<CompileArtifacts>) -> Self {
        self.artifacts = Some(artifacts);
        self
    }

    /// Validate the configuration into a runnable [`BuiltScenario`].
    ///
    /// All *configuration* errors surface here (missing payload, role /
    /// compiler mismatch, unsupported graph), so an invalid grid cell fails
    /// before any round executes.
    pub fn build(self) -> Result<BuiltScenario, ScenarioError> {
        if self.graph.node_count() == 0 {
            return Err(ScenarioError::EmptyGraph);
        }
        let payload = self.payload.ok_or(ScenarioError::MissingPayload)?;
        let compiler = self
            .compiler
            .unwrap_or_else(|| Box::new(Uncompiled) as Box<dyn Compiler>);
        compiler.validate(&self.graph, self.role)?;
        Ok(BuiltScenario {
            graph: self.graph,
            payload,
            role: self.role,
            strategy: self.strategy.unwrap_or_else(|| Box::new(NoAdversary)),
            budget: self.budget,
            seed: self.seed,
            compiler,
            bandwidth_words: self.bandwidth_words,
            check_fault_free: self.check_fault_free,
            trace: self.trace,
            artifacts: self.artifacts,
        })
    }

    /// Validate and execute in one call.
    pub fn run(self) -> Result<RunReport, ScenarioError> {
        self.build()?.run()
    }

    /// Validate the adversary configuration and hand back the bare
    /// [`Network`], for primitives that are not round-by-round payload
    /// algorithms (secure unicast/broadcast, the RS scheduler).  The payload
    /// and compiler fields are ignored.
    pub fn network(self) -> Result<Network, ScenarioError> {
        if self.graph.node_count() == 0 {
            return Err(ScenarioError::EmptyGraph);
        }
        let mut net = Network::new(
            self.graph,
            self.role,
            self.strategy.unwrap_or_else(|| Box::new(NoAdversary)),
            self.budget,
            self.seed,
        );
        if let Some(words) = self.bandwidth_words {
            net.set_bandwidth_words(words);
        }
        Ok(net)
    }
}

/// A validated scenario, ready to execute once.
pub struct BuiltScenario {
    graph: Graph,
    payload: PayloadFactory,
    role: AdversaryRole,
    strategy: Box<dyn AdversaryStrategy>,
    budget: CorruptionBudget,
    seed: u64,
    compiler: Box<dyn Compiler>,
    bandwidth_words: Option<usize>,
    check_fault_free: bool,
    trace: obs::TraceSpec,
    artifacts: Option<std::sync::Arc<CompileArtifacts>>,
}

impl BuiltScenario {
    /// Execute the scenario and gather the [`RunReport`].
    pub fn run(self) -> Result<RunReport, ScenarioError> {
        // The probe instance doubles as the fault-free reference run, so a
        // scenario costs at most one payload construction beyond the
        // compiled execution itself.
        let mut probe = (self.payload)();
        let payload_name = probe.name();
        let payload_rounds = probe.rounds();
        // A Reference-kind compiler *is* the fault-free run; don't pay for it
        // twice — its outputs are recorded as the reference below.
        let is_reference = self.compiler.kind() == CompilerKind::Reference;
        let fault_free = if self.check_fault_free && !is_reference {
            Some(run_fault_free(&mut *probe))
        } else {
            None
        };
        drop(probe);

        let mut tracer = self.trace.build_tracer();
        tracer.span_open(obs::Phase::GraphBuild);
        let mut net = Network::new(
            self.graph,
            self.role,
            self.strategy,
            self.budget.clone(),
            self.seed,
        );
        tracer.span_close(obs::Phase::GraphBuild);
        // Force the lazy CSR adjacency index under its own span, so compilers
        // downstream see a warm index and the build cost is attributed here.
        tracer.span_open(obs::Phase::CsrIndex);
        let _ = net.graph().csr();
        tracer.span_close(obs::Phase::CsrIndex);
        // Phase one: reuse supplied artifacts, or prepare them now on the same
        // tracer so packing spans land in the trace exactly where the
        // single-phase pipeline put them.
        let artifacts = match self.artifacts {
            Some(artifacts) => artifacts,
            None => std::sync::Arc::new(self.compiler.prepare(net.graph(), &mut tracer)?),
        };
        net.install_tracer(tracer);
        if let Some(words) = self.bandwidth_words {
            net.set_bandwidth_words(words);
        }
        let adversary = net.adversary_name();
        let result = self
            .compiler
            .execute_replayable(&artifacts, &self.payload, &mut net);
        let trace = net.take_tracer().finish();
        let (outputs, notes) = result?;
        let fault_free = if self.check_fault_free && is_reference {
            Some(outputs.clone())
        } else {
            fault_free
        };

        Ok(RunReport {
            payload: payload_name,
            compiler: self.compiler.name(),
            compiler_kind: self.compiler.kind(),
            adversary,
            role: self.role,
            budget: self.budget,
            seed: self.seed,
            payload_rounds,
            network_rounds: net.round(),
            outputs,
            fault_free,
            notes,
            metrics: net.metrics().clone(),
            view: net.view_log().clone(),
            trace,
        })
    }
}

/// Everything a scenario run produced, replacing the ad-hoc `println!`
/// tables of the old experiment harness.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Payload display name.
    pub payload: String,
    /// Compiler display name.
    pub compiler: String,
    /// What the compiler defends against (drives e.g. the baseline exemption
    /// in matrix verdicts).
    pub compiler_kind: CompilerKind,
    /// Adversary strategy display name.
    pub adversary: String,
    /// The adversary's role.
    pub role: AdversaryRole,
    /// The adversary's budget.
    pub budget: CorruptionBudget,
    /// The run seed.
    pub seed: u64,
    /// Rounds of the (uncompiled) payload.
    pub payload_rounds: usize,
    /// Network rounds the compiled execution consumed.
    pub network_rounds: usize,
    /// Per-node payload outputs.
    pub outputs: Vec<Output>,
    /// The fault-free reference outputs, when requested.
    pub fault_free: Option<Vec<Output>>,
    /// The compiler's typed diagnostics (rewinds, correction verdicts, key
    /// rounds, packing quality, …).
    pub notes: CompilerNotes,
    /// Round / message / bandwidth / corruption counters.
    pub metrics: Metrics,
    /// What the eavesdropper saw (empty for byzantine roles).
    pub view: ViewLog,
    /// Harvested trace: retained events (virtual-time only), the out-of-band
    /// per-phase wall profile, and the tracer's counters.  Empty and
    /// all-zero unless the scenario was built with
    /// [`ScenarioBuilder::trace`].  Its `Debug` form (which campaign
    /// fingerprints include) carries only counts and an event-stream digest,
    /// never wall durations.
    pub trace: obs::RunTrace,
}

impl RunReport {
    /// Whether the outputs equal the fault-free reference (`None` when the
    /// reference run was disabled).
    pub fn agrees_with_fault_free(&self) -> Option<bool> {
        self.fault_free.as_ref().map(|ff| ff == &self.outputs)
    }

    /// Network rounds per payload round.
    pub fn overhead(&self) -> f64 {
        self.network_rounds as f64 / self.payload_rounds.max(1) as f64
    }

    /// The per-phase wall-clock profile of the run (all-zero when the
    /// scenario was not traced).
    pub fn profile(&self) -> &obs::PhaseProfile {
        &self.trace.profile
    }

    /// Whether this run counts as correct for grid verdicts: baseline-kind
    /// compilers are exempt (an uncompiled run is *supposed* to be
    /// corruptible); everything else must not diverge from the fault-free
    /// reference.  Shared by `matrix::MatrixReport` and the harness
    /// campaign report.
    pub fn protected_cell_ok(&self) -> bool {
        self.compiler_kind == CompilerKind::Baseline || self.agrees_with_fault_free() != Some(false)
    }

    /// Whether any plaintext word from `secrets` appears verbatim in the
    /// adversary's recorded view (the operational leak check of the security
    /// experiments).
    pub fn view_contains_any(&self, secrets: &[u64]) -> bool {
        self.view.entries.iter().any(|entry| {
            [&entry.forward, &entry.backward].into_iter().any(|side| {
                side.as_ref()
                    .is_some_and(|p| p.iter().any(|w| secrets.contains(w)))
            })
        })
    }

    /// Header row matching [`RunReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<22} {:<20} {:<22} {:>7} {:>9} {:>9} {:>10} {:>8} {:<20}",
            "payload",
            "compiler",
            "adversary",
            "rounds",
            "net rnds",
            "overhead",
            "corrupted",
            "agrees",
            "notes"
        )
    }

    /// One formatted results row (experiment tables).
    pub fn table_row(&self) -> String {
        format!(
            "{:<22} {:<20} {:<22} {:>7} {:>9} {:>9.1} {:>10} {:>8} {:<20}",
            self.payload,
            self.compiler,
            self.adversary,
            self.payload_rounds,
            self.network_rounds,
            self.overhead(),
            self.metrics.corrupted_edge_rounds,
            match self.agrees_with_fault_free() {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            },
            if self.notes.is_none() {
                "-".into()
            } else {
                format!("notes={}", self.notes.summary())
            }
        )
    }
}

impl core::fmt::Display for RunReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} via {} under {} ({:?}): {} payload rounds -> {} network rounds ({:.1}x), {}",
            self.payload,
            self.compiler,
            self.adversary,
            self.role,
            self.payload_rounds,
            self.network_rounds,
            self.overhead(),
            match self.agrees_with_fault_free() {
                Some(true) => "matches fault-free",
                Some(false) => "DIVERGES from fault-free",
                None => "agreement unchecked",
            }
        )
    }
}

/// A 1-round doctest/demo payload: every node sends its id to all neighbours
/// and outputs the sorted ids it received.
pub fn doctest_payload(graph: Graph) -> impl CongestAlgorithm {
    struct ExchangeIds {
        graph: Graph,
        received: Vec<Vec<u64>>,
    }
    impl CongestAlgorithm for ExchangeIds {
        fn name(&self) -> String {
            "exchange-ids".into()
        }
        fn rounds(&self) -> usize {
            1
        }
        fn send(&mut self, _round: usize) -> crate::traffic::Traffic {
            let mut t = crate::traffic::Traffic::new(&self.graph);
            for v in self.graph.nodes() {
                for &(u, _) in self.graph.neighbors(v) {
                    t.send(&self.graph, v, u, vec![v as u64]);
                }
            }
            t
        }
        fn receive(&mut self, _round: usize, inbox: &crate::traffic::Traffic) {
            for v in self.graph.nodes() {
                for (_, payload) in inbox.inbox_of(&self.graph, v) {
                    self.received[v].push(payload[0]);
                }
                self.received[v].sort_unstable();
            }
        }
        fn outputs(&self) -> Vec<Output> {
            self.received.clone()
        }
    }
    let n = graph.node_count();
    ExchangeIds {
        graph,
        received: vec![Vec::new(); n],
    }
}

pub mod matrix {
    //! Grid sweeps: every graph family × adversary strategy × compiler in one
    //! call, with incompatible cells recorded as typed skips instead of
    //! panics.
    //!
    //! The specs here are `Send + Sync` factories, so a grid description can
    //! be shared across worker threads.  [`sweep`] is the single-threaded
    //! facade over the per-cell engine entry point [`run_cell`]; the
    //! `mobile-congest-harness` crate drives the same entry point from a
    //! deterministic parallel worker pool (`harness::Campaign`) for
    //! multi-core sweeps with repetitions and aggregation.

    use super::{BoxedAlgorithm, CompileArtifacts, Compiler, RunReport, Scenario, ScenarioError};
    use crate::adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget};
    use netgraph::Graph;

    /// A named graph in the sweep.
    pub struct GraphSpec {
        /// Display name (e.g. `"K16"`).
        pub name: String,
        /// The graph itself.
        pub graph: Graph,
    }

    impl GraphSpec {
        /// A named graph.
        pub fn new(name: impl Into<String>, graph: Graph) -> Self {
            GraphSpec {
                name: name.into(),
                graph,
            }
        }
    }

    /// A named adversary configuration in the sweep.
    pub struct AdversarySpec {
        /// Display name (e.g. `"random-mobile"`).
        pub name: String,
        /// Eavesdropper or byzantine.
        pub role: AdversaryRole,
        /// The corruption budget.
        pub budget: CorruptionBudget,
        make: Box<dyn Fn(u64) -> Box<dyn AdversaryStrategy> + Send + Sync>,
    }

    impl AdversarySpec {
        /// A named adversary; `make` receives the cell seed so strategies
        /// with internal randomness stay reproducible per cell.
        pub fn new(
            name: impl Into<String>,
            role: AdversaryRole,
            budget: CorruptionBudget,
            make: impl Fn(u64) -> Box<dyn AdversaryStrategy> + Send + Sync + 'static,
        ) -> Self {
            AdversarySpec {
                name: name.into(),
                role,
                budget,
                make: Box::new(make),
            }
        }
    }

    /// A named compiler in the sweep (a factory, so each cell gets a fresh
    /// boxed instance).
    pub struct CompilerSpec {
        /// Display name.
        pub name: String,
        make: Box<dyn Fn() -> Box<dyn Compiler> + Send + Sync>,
    }

    impl CompilerSpec {
        /// A named compiler factory.
        pub fn new(
            name: impl Into<String>,
            make: impl Fn() -> Box<dyn Compiler> + Send + Sync + 'static,
        ) -> Self {
            CompilerSpec {
                name: name.into(),
                make: Box::new(make),
            }
        }

        /// Shorthand for compilers that are `Clone`.
        pub fn of<C: Compiler + Clone + Send + Sync + 'static>(compiler: C) -> Self {
            let name = compiler.name();
            CompilerSpec::new(name, move || Box::new(compiler.clone()))
        }

        /// A fresh compiler instance from the factory — what the per-cell
        /// engine calls, exposed so campaign-level machinery (the artifact
        /// cache) can drive [`Compiler::prepare`] outside a cell.
        pub fn instantiate(&self) -> Box<dyn Compiler> {
            (self.make)()
        }
    }

    /// One cell of the sweep.
    pub struct MatrixCell {
        /// Graph name.
        pub graph: String,
        /// Adversary name.
        pub adversary: String,
        /// Compiler name.
        pub compiler: String,
        /// The run report, or the typed reason the cell could not run.
        pub outcome: Result<RunReport, ScenarioError>,
    }

    impl MatrixCell {
        /// Whether the cell was skipped because the configuration is
        /// *structurally* incompatible (role mismatch, unsupported graph,
        /// per-graph parameter rejection) as opposed to having failed at
        /// runtime.
        pub fn skipped(&self) -> bool {
            matches!(&self.outcome, Err(e) if e.is_validation_error())
        }
    }

    /// All cells of a sweep.
    pub struct MatrixReport {
        /// Cells in graph-major, adversary-second, compiler-minor order.
        pub cells: Vec<MatrixCell>,
    }

    impl MatrixReport {
        /// Cells that executed (successfully or not) rather than being
        /// skipped by validation.
        pub fn executed(&self) -> impl Iterator<Item = &MatrixCell> {
            self.cells.iter().filter(|c| !c.skipped())
        }

        /// Number of validation-skipped cells.
        pub fn skipped_count(&self) -> usize {
            self.cells.iter().filter(|c| c.skipped()).count()
        }

        /// Whether every executed cell produced outputs that agree with the
        /// fault-free reference.  Baseline-kind compilers are exempt — an
        /// uncompiled run is *supposed* to be corruptible.
        pub fn all_protected_cells_agree(&self) -> bool {
            self.executed().all(|cell| match &cell.outcome {
                Ok(report) => report.protected_cell_ok(),
                Err(_) => false,
            })
        }

        /// A formatted results table (one row per cell).
        pub fn to_table(&self) -> String {
            let mut out = String::new();
            out.push_str(&format!(
                "{:<12} {:<22} {:<20} {:>9} {:>9} {:>8}\n",
                "graph", "adversary", "compiler", "net rnds", "overhead", "agrees"
            ));
            for cell in &self.cells {
                match &cell.outcome {
                    Ok(report) => out.push_str(&format!(
                        "{:<12} {:<22} {:<20} {:>9} {:>9.1} {:>8}\n",
                        cell.graph,
                        cell.adversary,
                        cell.compiler,
                        report.network_rounds,
                        report.overhead(),
                        match report.agrees_with_fault_free() {
                            Some(true) => "yes",
                            Some(false) => "NO",
                            None => "-",
                        }
                    )),
                    Err(e) if cell.skipped() => out.push_str(&format!(
                        "{:<12} {:<22} {:<20} skipped: {}\n",
                        cell.graph, cell.adversary, cell.compiler, e
                    )),
                    Err(e) => out.push_str(&format!(
                        "{:<12} {:<22} {:<20} FAILED: {}\n",
                        cell.graph, cell.adversary, cell.compiler, e
                    )),
                }
            }
            out
        }
    }

    /// A serializable description of one adversary configuration: the
    /// strategy family as *data* (kind + parameters), resolvable into a
    /// runtime [`AdversarySpec`] via [`AdversaryDef::to_spec`].
    ///
    /// The [`adversary_zoo`] is defined in terms of these defs
    /// ([`adversary_zoo_defs`]), so the data form and the hand-built zoo
    /// cannot drift; the `harness` spec layer serializes them to JSON.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum AdversaryDef {
        /// [`RandomMobile`](crate::adversary::RandomMobile): `f` uniformly
        /// random edges per round, byzantine.
        RandomMobile {
            /// Per-round edge budget.
            f: usize,
        },
        /// [`SweepMobile`](crate::adversary::SweepMobile): a deterministic
        /// window sweeping the edge list.
        SweepMobile {
            /// Per-round edge budget.
            f: usize,
        },
        /// [`GreedyHeaviest`](crate::adversary::GreedyHeaviest): the `f`
        /// heaviest-loaded edges of the current round.
        GreedyHeaviest {
            /// Per-round edge budget.
            f: usize,
            /// How controlled messages are rewritten.
            mode: crate::adversary::CorruptionMode,
        },
        /// [`AdaptiveHeaviest`](crate::adversary::AdaptiveHeaviest): targets
        /// the previous round's observed loads.
        AdaptiveHeaviest {
            /// Per-round edge budget.
            f: usize,
        },
        /// [`EclipseNode`](crate::adversary::EclipseNode): rotates over one
        /// node's incident edges.
        Eclipse {
            /// The eclipsed node.
            node: usize,
            /// Per-round edge budget.
            f: usize,
            /// How controlled messages are rewritten.
            mode: crate::adversary::CorruptionMode,
        },
        /// [`BurstAdversary`](crate::adversary::BurstAdversary) under a
        /// whole-execution round-error-rate budget.
        Burst {
            /// Quiet rounds between bursts.
            quiet: usize,
            /// Burst length in rounds.
            burst: usize,
            /// Edges corrupted per burst round.
            per_round: usize,
            /// Whole-execution edge-round budget.
            total: usize,
        },
        /// An eavesdropping [`RandomMobile`](crate::adversary::RandomMobile):
        /// reads (never rewrites) `f` random edges per round.
        Eavesdropper {
            /// Per-round edge budget.
            f: usize,
        },
        /// [`SynthesizedSchedule`](crate::adversary::SynthesizedSchedule): a
        /// concrete per-round edge-corruption schedule, applied cyclically
        /// (round `r` corrupts entry `r % len`).  This is the adversary the
        /// red-team search synthesizes and the shrinker minimizes — the whole
        /// attack is data, so counterexamples replay from their spec.
        Synthesized {
            /// Per-round corrupted-edge lists (cyclic).
            schedule: Vec<Vec<usize>>,
            /// How controlled messages are rewritten.
            mode: crate::adversary::CorruptionMode,
        },
    }

    impl AdversaryDef {
        /// The display name campaign grids use, matching the historical
        /// hand-built zoo names (`random-mobile`, `greedy-heaviest`,
        /// `eclipse(v=0)`, …).
        pub fn display_name(&self) -> String {
            match self {
                AdversaryDef::RandomMobile { .. } => "random-mobile".into(),
                AdversaryDef::SweepMobile { .. } => "sweep-mobile".into(),
                AdversaryDef::GreedyHeaviest { .. } => "greedy-heaviest".into(),
                AdversaryDef::AdaptiveHeaviest { .. } => "adaptive-heaviest".into(),
                AdversaryDef::Eclipse { node, .. } => format!("eclipse(v={node})"),
                AdversaryDef::Burst { .. } => "burst".into(),
                AdversaryDef::Eavesdropper { .. } => "eavesdropper".into(),
                AdversaryDef::Synthesized { schedule, .. } => format!(
                    "synthesized(r={},f={})",
                    schedule.len(),
                    synthesized_budget_f(schedule)
                ),
            }
        }

        /// The adversary's role (byzantine for everything except the
        /// eavesdropper).
        pub fn role(&self) -> AdversaryRole {
            match self {
                AdversaryDef::Eavesdropper { .. } => AdversaryRole::Eavesdropper,
                _ => AdversaryRole::Byzantine,
            }
        }

        /// The corruption budget the def implies.
        pub fn budget(&self) -> CorruptionBudget {
            match *self {
                AdversaryDef::RandomMobile { f }
                | AdversaryDef::SweepMobile { f }
                | AdversaryDef::GreedyHeaviest { f, .. }
                | AdversaryDef::AdaptiveHeaviest { f }
                | AdversaryDef::Eclipse { f, .. }
                | AdversaryDef::Eavesdropper { f } => CorruptionBudget::Mobile { f },
                AdversaryDef::Burst { total, .. } => CorruptionBudget::RoundErrorRate { total },
                AdversaryDef::Synthesized { ref schedule, .. } => CorruptionBudget::Mobile {
                    f: synthesized_budget_f(schedule),
                },
            }
        }

        /// Resolve the def into a runtime [`AdversarySpec`] (name, role,
        /// budget and a seed-taking strategy factory).
        pub fn to_spec(&self) -> AdversarySpec {
            use crate::adversary::{
                AdaptiveHeaviest, BurstAdversary, EclipseNode, GreedyHeaviest, RandomMobile,
                SweepMobile, SynthesizedSchedule,
            };
            let def = self.clone();
            AdversarySpec::new(
                self.display_name(),
                self.role(),
                self.budget(),
                move |seed| match &def {
                    AdversaryDef::RandomMobile { f } => Box::new(RandomMobile::new(*f, seed)),
                    AdversaryDef::SweepMobile { f } => Box::new(SweepMobile::new(*f)),
                    AdversaryDef::GreedyHeaviest { f, mode } => {
                        Box::new(GreedyHeaviest::new(*f).with_mode(*mode))
                    }
                    AdversaryDef::AdaptiveHeaviest { f } => Box::new(AdaptiveHeaviest::new(*f)),
                    AdversaryDef::Eclipse { node, f, mode } => {
                        Box::new(EclipseNode::new(*node, *f).with_mode(*mode))
                    }
                    AdversaryDef::Burst {
                        quiet,
                        burst,
                        per_round,
                        ..
                    } => Box::new(BurstAdversary::new(*quiet, *burst, *per_round, seed)),
                    AdversaryDef::Eavesdropper { f } => Box::new(RandomMobile::new(*f, seed)),
                    AdversaryDef::Synthesized { schedule, mode } => {
                        Box::new(SynthesizedSchedule::new(schedule.clone()).with_mode(*mode))
                    }
                },
            )
        }
    }

    /// The per-round edge budget a synthesized schedule implies: its longest
    /// per-round entry, at least 1 (mirrors
    /// [`SynthesizedSchedule::max_edges_per_round`](crate::adversary::SynthesizedSchedule::max_edges_per_round)).
    fn synthesized_budget_f(schedule: &[Vec<usize>]) -> usize {
        schedule
            .iter()
            .map(|edges| edges.len())
            .max()
            .unwrap_or(0)
            .max(1)
    }

    /// A named graph spec resolved from a serializable [`netgraph::GraphDef`]: the
    /// display name is the def's canonical one, so spec-built and hand-built
    /// grids agree.
    impl GraphSpec {
        /// Resolve a [`netgraph::GraphDef`] into a named spec.
        pub fn from_def(def: &netgraph::GraphDef) -> Result<GraphSpec, netgraph::GraphDefError> {
            Ok(GraphSpec::new(def.display_name(), def.build()?))
        }
    }

    /// The standard topology zoo as *data*: the defs behind [`graph_zoo`].
    /// `seed` drives the randomized generators, so two zoos with the same
    /// seed are identical.
    pub fn graph_zoo_defs(seed: u64) -> Vec<netgraph::GraphDef> {
        use netgraph::GraphDef;
        vec![
            GraphDef::complete(12),
            GraphDef::circulant(18, 4),
            GraphDef::grid(4, 4),
            GraphDef::torus(4, 5),
            GraphDef::expander(24, 8, seed),
            GraphDef::watts_strogatz(24, 6, 0.2, seed ^ 0x5A11),
            GraphDef::ring_of_cliques(4, 5),
            GraphDef::barbell(5, 2),
        ]
    }

    /// The standard topology zoo for campaign grids: the classic families the
    /// compilers target (clique, circulant, grid) plus the expanded set —
    /// 2-D torus, seeded random-regular expander, Watts–Strogatz small
    /// world, ring of cliques and barbell.  `seed` drives the randomized
    /// generators, so two zoos with the same seed are identical.
    ///
    /// Delegates to [`graph_zoo_defs`] — the zoo *is* its data form — so
    /// serialized campaign specs and hand-built grids cannot drift.  Sizes
    /// are chosen so a full zoo × [`adversary_zoo`] × compiler grid stays
    /// fast enough for tests while still exercising every generator.
    pub fn graph_zoo(seed: u64) -> Vec<GraphSpec> {
        graph_zoo_defs(seed)
            .iter()
            .map(|def| GraphSpec::from_def(def).expect("zoo defs are always valid"))
            .collect()
    }

    /// The standard adversary zoo as *data*: the defs behind
    /// [`adversary_zoo`].  `f` is the per-round edge budget.
    pub fn adversary_zoo_defs(f: usize) -> Vec<AdversaryDef> {
        use crate::adversary::CorruptionMode;
        let f = f.max(1);
        vec![
            AdversaryDef::RandomMobile { f },
            AdversaryDef::SweepMobile { f },
            AdversaryDef::GreedyHeaviest {
                f,
                mode: CorruptionMode::FlipLowBit,
            },
            AdversaryDef::AdaptiveHeaviest { f },
            AdversaryDef::Eclipse {
                node: 0,
                f,
                mode: CorruptionMode::Drop,
            },
            AdversaryDef::Burst {
                quiet: 6,
                burst: 2,
                per_round: 4 * f,
                total: 12 * f,
            },
            AdversaryDef::Eavesdropper { f: f + 1 },
        ]
    }

    /// The standard adversary zoo for campaign grids: every strategy family
    /// (random / sweeping / greedy / adaptive / eclipse / bursty) under the
    /// budgets that make them meaningful, plus an eavesdropper so secrecy
    /// compilers run too.  `f` is the per-round edge budget.
    ///
    /// Delegates to [`adversary_zoo_defs`] — the zoo *is* its data form.
    pub fn adversary_zoo(f: usize) -> Vec<AdversarySpec> {
        adversary_zoo_defs(f)
            .iter()
            .map(AdversaryDef::to_spec)
            .collect()
    }

    /// Mix a stable per-cell seed out of the base seed and cell coordinates.
    fn cell_seed(base: u64, gi: usize, ai: usize, ci: usize) -> u64 {
        let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
        for x in [gi as u64, ai as u64, ci as u64] {
            h ^= x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(23).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        }
        h
    }

    /// Execute one grid cell: build the scenario for `gspec` × `aspec` ×
    /// `cspec` with the given seed and run it.
    ///
    /// This is the single per-cell engine entry point: [`sweep`] calls it
    /// sequentially, and the `harness` campaign engine calls it from worker
    /// threads (everything a cell needs is constructed inside the call, so
    /// nothing non-`Send` ever crosses a thread boundary).  The outcome is a
    /// pure function of the specs and the seed, which is what makes parallel
    /// campaigns byte-identical at any thread count.
    pub fn run_cell<P>(
        gspec: &GraphSpec,
        aspec: &AdversarySpec,
        cspec: &CompilerSpec,
        payload: &P,
        seed: u64,
    ) -> Result<RunReport, ScenarioError>
    where
        P: Fn(&Graph) -> BoxedAlgorithm + Clone + 'static,
    {
        run_cell_traced(gspec, aspec, cspec, payload, seed, obs::TraceSpec::off())
    }

    /// [`run_cell`] with an explicit trace spec: the cell's event stream and
    /// per-phase wall profile come back on [`RunReport::trace`].  Because a
    /// cell's trace is a pure function of the specs and the seed, traced
    /// campaigns stay byte-identical at any worker-thread count.
    pub fn run_cell_traced<P>(
        gspec: &GraphSpec,
        aspec: &AdversarySpec,
        cspec: &CompilerSpec,
        payload: &P,
        seed: u64,
        trace: obs::TraceSpec,
    ) -> Result<RunReport, ScenarioError>
    where
        P: Fn(&Graph) -> BoxedAlgorithm + Clone + 'static,
    {
        run_cell_artifacts(gspec, aspec, cspec, payload, seed, trace, None)
    }

    /// [`run_cell_traced`] with optional pre-built [`CompileArtifacts`] for
    /// the cell's `(graph, compiler)` pair, the entry point the campaign
    /// artifact cache drives.  With `Some`, the scenario runs on the
    /// artifacts' CSR-warmed graph and skips [`Compiler::prepare`]; with
    /// `None` it behaves exactly like [`run_cell_traced`].  Because prepared
    /// artifacts are a pure function of `(graph, compiler)`, both paths
    /// produce byte-identical reports.
    #[allow(clippy::too_many_arguments)]
    pub fn run_cell_artifacts<P>(
        gspec: &GraphSpec,
        aspec: &AdversarySpec,
        cspec: &CompilerSpec,
        payload: &P,
        seed: u64,
        trace: obs::TraceSpec,
        artifacts: Option<std::sync::Arc<CompileArtifacts>>,
    ) -> Result<RunReport, ScenarioError>
    where
        P: Fn(&Graph) -> BoxedAlgorithm + Clone + 'static,
    {
        let graph = match &artifacts {
            Some(a) => a.graph().clone(),
            None => gspec.graph.clone(),
        };
        let payload_graph = gspec.graph.clone();
        let make_payload = payload.clone();
        let mut builder = Scenario::on(graph)
            .payload_boxed(move || make_payload(&payload_graph))
            .adversary_boxed(aspec.role, (aspec.make)(seed), aspec.budget.clone())
            .seed(seed)
            .compiled_with_boxed((cspec.make)())
            .trace(trace);
        if let Some(artifacts) = artifacts {
            builder = builder.artifacts(artifacts);
        }
        builder.run()
    }

    /// Run `payload` through every graph × adversary × compiler combination.
    ///
    /// `payload` receives the cell's graph and must return a fresh boxed
    /// instance every call.  Cells whose configuration fails validation are
    /// recorded as skipped, not errors — a sweep mixing secrecy and
    /// resilience compilers across both roles is the intended usage.
    ///
    /// This is the thin single-threaded facade over [`run_cell`]; for
    /// multi-core grids with seed repetitions and statistical aggregation use
    /// `mobile_congest::harness::Campaign`, which drives the same per-cell
    /// pipeline in parallel, byte-identical at any thread count.  (The two
    /// derive per-cell seeds differently — `sweep` mixes grid coordinates,
    /// a campaign mixes its flat cell index — so a 1-repetition campaign is
    /// deterministic but not seed-compatible with a `sweep` of the same base
    /// seed.)
    pub fn sweep<P>(
        graphs: &[GraphSpec],
        adversaries: &[AdversarySpec],
        compilers: &[CompilerSpec],
        payload: P,
        base_seed: u64,
    ) -> MatrixReport
    where
        P: Fn(&Graph) -> BoxedAlgorithm + Clone + 'static,
    {
        let mut cells = Vec::with_capacity(graphs.len() * adversaries.len() * compilers.len());
        for (gi, gspec) in graphs.iter().enumerate() {
            for (ai, aspec) in adversaries.iter().enumerate() {
                for (ci, cspec) in compilers.iter().enumerate() {
                    let seed = cell_seed(base_seed, gi, ai, ci);
                    cells.push(MatrixCell {
                        graph: gspec.name.clone(),
                        adversary: aspec.name.clone(),
                        compiler: cspec.name.clone(),
                        outcome: run_cell(gspec, aspec, cspec, &payload, seed),
                    });
                }
            }
        }
        MatrixReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CorruptionMode, FixedEdges, RandomMobile};
    use netgraph::generators;

    fn exchange(graph: &Graph) -> impl CongestAlgorithm {
        doctest_payload(graph.clone())
    }

    #[test]
    fn missing_payload_is_a_typed_error() {
        let err = Scenario::on(generators::cycle(4)).run().unwrap_err();
        assert_eq!(err, ScenarioError::MissingPayload);
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        let g = Graph::new(0);
        let err = Scenario::on(g.clone())
            .payload(move || doctest_payload(g.clone()))
            .run()
            .unwrap_err();
        assert_eq!(err, ScenarioError::EmptyGraph);
    }

    #[test]
    fn default_compiler_is_the_uncompiled_baseline() {
        let g = generators::cycle(5);
        let gg = g.clone();
        let report = Scenario::on(g.clone())
            .payload(move || exchange(&gg))
            .run()
            .unwrap();
        assert_eq!(report.compiler, "uncompiled");
        assert_eq!(report.agrees_with_fault_free(), Some(true));
        assert_eq!(report.network_rounds, 1);
    }

    #[test]
    fn fault_free_compiler_never_touches_the_network() {
        let g = generators::cycle(5);
        let target = g.edge_between(0, 1).unwrap();
        let gg = g.clone();
        let report = Scenario::on(g)
            .payload(move || exchange(&gg))
            .adversary(
                AdversaryRole::Byzantine,
                FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(99)),
                CorruptionBudget::Static(vec![target]),
            )
            .compiled_with(FaultFree)
            .run()
            .unwrap();
        assert_eq!(report.network_rounds, 0);
        assert_eq!(report.metrics.corrupted_messages, 0);
        assert_eq!(report.agrees_with_fault_free(), Some(true));
    }

    #[test]
    fn eavesdropper_view_is_captured_in_the_report() {
        let g = generators::path(3);
        let e01 = g.edge_between(0, 1).unwrap();
        let gg = g.clone();
        let report = Scenario::on(g)
            .payload(move || exchange(&gg))
            .adversary(
                AdversaryRole::Eavesdropper,
                FixedEdges::new(vec![e01]),
                CorruptionBudget::Static(vec![e01]),
            )
            .run()
            .unwrap();
        assert_eq!(report.view.len(), 1);
        assert!(report.view_contains_any(&[0]));
        assert_eq!(report.agrees_with_fault_free(), Some(true));
    }

    #[test]
    fn kind_role_compatibility() {
        use AdversaryRole::*;
        assert!(CompilerKind::Baseline.supports(Byzantine));
        assert!(CompilerKind::Baseline.supports(Eavesdropper));
        assert!(CompilerKind::Resilient.supports(Byzantine));
        assert!(!CompilerKind::Resilient.supports(Eavesdropper));
        assert!(!CompilerKind::Secure.supports(Byzantine));
        assert!(CompilerKind::Secure.supports(Eavesdropper));
        assert!(!CompilerKind::RateResilient.supports(Eavesdropper));
    }

    #[test]
    fn network_builder_validates_and_configures() {
        let g = generators::cycle(6);
        let mut net = Scenario::on(g)
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 3),
                CorruptionBudget::Mobile { f: 1 },
            )
            .seed(3)
            .network()
            .unwrap();
        net.idle_rounds(2);
        assert_eq!(net.round(), 2);
        assert!(Scenario::on(Graph::new(0)).network().is_err());
    }

    #[test]
    fn report_table_row_is_well_formed() {
        let g = generators::cycle(4);
        let gg = g.clone();
        let report = Scenario::on(g)
            .payload(move || exchange(&gg))
            .adversary(
                AdversaryRole::Byzantine,
                RandomMobile::new(1, 1),
                CorruptionBudget::Mobile { f: 1 },
            )
            .run()
            .unwrap();
        assert!(!RunReport::table_header().is_empty());
        assert!(report.table_row().contains("uncompiled"));
        assert!(!format!("{report}").is_empty());
    }

    #[test]
    fn matrix_sweep_covers_the_grid_and_skips_mismatches() {
        use matrix::{sweep, AdversarySpec, CompilerSpec, GraphSpec};
        let graphs = vec![
            GraphSpec::new("cycle6", generators::cycle(6)),
            GraphSpec::new("K5", generators::complete(5)),
        ];
        let adversaries = vec![
            AdversarySpec::new(
                "random-mobile",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
            AdversarySpec::new(
                "eavesdropper",
                AdversaryRole::Eavesdropper,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
        ];
        // A dummy "secure" compiler that just runs uncompiled, to exercise
        // role-based skipping without the core adapters.
        #[derive(Clone)]
        struct SecureShim;
        impl Compiler for SecureShim {
            fn name(&self) -> String {
                "secure-shim".into()
            }
            fn kind(&self) -> CompilerKind {
                CompilerKind::Secure
            }
            fn compile(
                &self,
                payload: BoxedAlgorithm,
                net: &mut Network,
            ) -> Result<(Vec<Output>, CompilerNotes), ScenarioError> {
                Uncompiled.compile(payload, net)
            }
        }
        let compilers = vec![CompilerSpec::of(FaultFree), CompilerSpec::of(SecureShim)];
        let report = sweep(
            &graphs,
            &adversaries,
            &compilers,
            |g| Box::new(doctest_payload(g.clone())) as BoxedAlgorithm,
            42,
        );
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        // The secure shim is skipped under the byzantine adversary on every graph.
        assert_eq!(report.skipped_count(), 2);
        assert!(report
            .cells
            .iter()
            .filter(|c| c.skipped())
            .all(|c| matches!(c.outcome, Err(ScenarioError::RoleMismatch { .. }))));
        assert!(report.all_protected_cells_agree());
        assert!(report.to_table().contains("skipped"));
    }
}
