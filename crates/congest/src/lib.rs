//! Round-synchronous CONGEST / CONGESTED CLIQUE simulator with mobile edge adversaries.
//!
//! This crate is the execution substrate of the Fischer–Parter reproduction:
//!
//! * [`traffic::Traffic`] — the messages of one round, one payload per directed arc;
//! * [`network::Network`] — executes rounds, letting an adversary (eavesdropper
//!   or byzantine, with a static / mobile / round-error-rate budget) interpose
//!   on every round's traffic, while accounting rounds, congestion and
//!   corruption;
//! * [`adversary`] — adversary strategies (random mobile, sweeping, greedy
//!   heaviest, bursty, scheduled) and budgets;
//! * [`algorithm::CongestAlgorithm`] — the round-by-round interface that the
//!   compilers in `mobile-congest-core` wrap.
//!
//! # Example
//!
//! ```
//! use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
//! use congest_sim::network::Network;
//! use congest_sim::traffic::Traffic;
//! use netgraph::generators;
//!
//! let g = generators::cycle(6);
//! let mut net = Network::new(
//!     g.clone(),
//!     AdversaryRole::Byzantine,
//!     Box::new(RandomMobile::new(1, 7)),
//!     CorruptionBudget::Mobile { f: 1 },
//!     7,
//! );
//! let mut t = Traffic::new(&g);
//! t.send(&g, 0, 1, vec![42]);
//! let delivered = net.exchange(t);
//! // At most one edge was corrupted this round.
//! assert!(net.corruption_history()[0].len() <= 1);
//! # let _ = delivered;
//! ```
//!
//! # Performance model
//!
//! The round engine is **zero-allocation at steady state**: [`Traffic`] is a
//! flat word arena recycled via [`Traffic::begin_round`], adversaries mark
//! edges into a reusable [`adversary::EdgeSet`] bitset, corruption rewrites
//! payloads in place through a recycled scratch buffer, and the corruption
//! history appends to a flattened [`network::CorruptionHistory`].  The
//! PR-2-era engine is retained in [`mod@reference`] for parity tests and the
//! before/after benchmark.

#![warn(missing_docs)]

pub mod adversary;
pub mod algorithm;
pub mod metrics;
pub mod network;
pub mod reference;
pub mod scenario;
pub mod traffic;

pub use adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget, CorruptionMode, EdgeSet};
pub use algorithm::{run_fault_free, run_on_network, CongestAlgorithm};
pub use metrics::Metrics;
pub use network::{CorruptionHistory, Network, ViewEntry, ViewLog};
pub use scenario::{Compiler, CompilerKind, RunReport, Scenario, ScenarioError};
pub use traffic::{Output, Payload, Traffic};
