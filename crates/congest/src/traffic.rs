//! Per-round message traffic, stored as a flat reusable word arena.
//!
//! A [`Traffic`] value holds, for every directed arc of the communication
//! graph, the (optional) payload sent over that arc in a single round.  This is
//! the unit that flows through the network: protocols build a `Traffic`, the
//! network lets the adversary interpose on it, and the (possibly corrupted)
//! `Traffic` is what the receivers observe.
//!
//! # Representation
//!
//! The seed engine stored one `Option<Vec<u64>>` per arc — every message was
//! its own heap allocation, rebuilt every round.  `Traffic` now keeps a single
//! flat `words` arena plus one fixed-size span record per arc; sending copies
//! the payload words into the arena, and [`Traffic::clear`] /
//! [`Traffic::begin_round`] recycle both buffers without releasing their
//! capacity.  A round loop that reuses one `Traffic` therefore performs **no
//! steady-state allocations**, which is what the campaign engine’s ≥2×
//! round-throughput win comes from (see `benches/experiments.rs`, E16a).
//!
//! Re-sending on an arc reuses its span in place when the new payload fits and
//! appends to the arena otherwise; superseded words are reclaimed at the next
//! `clear`.  All logical accessors ([`Traffic::get_arc`], equality, diffs)
//! see only the live spans.

use netgraph::{ArcId, Graph, NodeId};

/// A message payload: a short sequence of machine words.
///
/// The CONGEST model allows `B = O(log n)` bits per edge per round; the
/// simulator treats one `u64` word as `Θ(log n)` bits and reports how many
/// bandwidth-normalised rounds a payload of `w` words would cost.
pub type Payload = Vec<u64>;

/// Per-node protocol output: an arbitrary word sequence.
pub type Output = Vec<u64>;

/// Span of one arc's payload inside the word arena.
///
/// `len_plus_one == 0` encodes "no message"; otherwise the payload is
/// `words[off .. off + len_plus_one - 1]` (so empty-but-present payloads are
/// distinguishable from absent ones, as with the seed's `Option<Vec>`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Span {
    off: u32,
    len_plus_one: u32,
}

impl Span {
    #[inline]
    fn len(self) -> usize {
        (self.len_plus_one as usize).saturating_sub(1)
    }
}

/// The messages sent over every directed arc in one communication round.
#[derive(Debug, Default)]
pub struct Traffic {
    /// Per-arc span into `words` (`len_plus_one == 0` ⇒ no message).
    spans: Vec<Span>,
    /// The shared word arena all present payloads live in.
    words: Vec<u64>,
}

impl Clone for Traffic {
    fn clone(&self) -> Self {
        Traffic {
            spans: self.spans.clone(),
            words: self.words.clone(),
        }
    }

    /// Buffer-reusing clone: compilers that need a pristine copy of the sent
    /// traffic each round (`received.clone_from(&sent)`) keep both arenas'
    /// capacity across rounds.
    fn clone_from(&mut self, source: &Self) {
        self.spans.clone_from(&source.spans);
        self.words.clone_from(&source.words);
    }
}

impl Traffic {
    /// Empty traffic for a graph (no messages on any arc).
    pub fn new(g: &Graph) -> Self {
        Traffic::with_arcs(g.arc_count())
    }

    /// Empty traffic with `arcs` arc slots.
    pub fn with_arcs(arcs: usize) -> Self {
        Traffic {
            spans: vec![Span::default(); arcs],
            words: Vec::new(),
        }
    }

    /// Number of arcs (2·m).
    pub fn arc_slots(&self) -> usize {
        self.spans.len()
    }

    /// Drop every message, keeping the arc slots and all buffer capacity.
    pub fn clear(&mut self) {
        self.spans.fill(Span::default());
        self.words.clear();
    }

    /// Prepare this buffer for a fresh round on `g`: drop every message and
    /// (re)size the arc slots to `g.arc_count()`, reusing all capacity.
    /// This is what [`crate::algorithm::CongestAlgorithm::send_into`]
    /// implementations call first.
    pub fn begin_round(&mut self, g: &Graph) {
        self.spans.clear();
        self.spans.resize(g.arc_count(), Span::default());
        self.words.clear();
    }

    /// Allocated capacity of the word arena, in words.  Exposed so
    /// buffer-reuse tests can assert that a steady-state round loop stops
    /// allocating (a `Vec` only reallocates to grow).
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Copy `payload` into the arc's slot, reusing the existing span when the
    /// new payload fits.
    fn write_arc(&mut self, arc: ArcId, payload: &[u64]) {
        assert!(
            arc < self.spans.len(),
            "arc {arc} out of range for {} slots",
            self.spans.len()
        );
        let span = self.spans[arc];
        let off = if span.len_plus_one != 0 && payload.len() <= span.len() {
            span.off as usize
        } else {
            self.words.len()
        };
        if off == self.words.len() {
            // Strict bound: `len_plus_one = len + 1` must also fit in u32.
            assert!(
                off + payload.len() < u32::MAX as usize,
                "traffic word arena overflow"
            );
            self.words.extend_from_slice(payload);
        } else {
            self.words[off..off + payload.len()].copy_from_slice(payload);
        }
        self.spans[arc] = Span {
            off: off as u32,
            len_plus_one: payload.len() as u32 + 1,
        };
    }

    /// Set the message sent from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` is not an edge of the graph.
    pub fn send(&mut self, g: &Graph, from: NodeId, to: NodeId, payload: impl AsRef<[u64]>) {
        let arc = g
            .arc_between(from, to)
            .unwrap_or_else(|| panic!("({from},{to}) is not an edge"));
        self.write_arc(arc, payload.as_ref());
    }

    /// The message sent from `from` to `to`, if any.
    pub fn get(&self, g: &Graph, from: NodeId, to: NodeId) -> Option<&[u64]> {
        let arc = g.arc_between(from, to)?;
        self.get_arc(arc)
    }

    /// The message on a specific arc, if any.
    #[inline]
    pub fn get_arc(&self, arc: ArcId) -> Option<&[u64]> {
        let span = *self.spans.get(arc)?;
        if span.len_plus_one == 0 {
            None
        } else {
            let off = span.off as usize;
            Some(&self.words[off..off + span.len()])
        }
    }

    /// Overwrite the message on a specific arc (used by the adversary).
    ///
    /// # Panics
    ///
    /// Panics if `arc` is out of range.
    pub fn set_arc(&mut self, arc: ArcId, payload: Option<&[u64]>) {
        match payload {
            Some(p) => self.write_arc(arc, p),
            None => {
                assert!(
                    arc < self.spans.len(),
                    "arc {arc} out of range for {} slots",
                    self.spans.len()
                );
                self.spans[arc] = Span::default();
            }
        }
    }

    /// Iterate over all present messages as `(arc, payload)`.
    pub fn iter_present(&self) -> impl Iterator<Item = (ArcId, &[u64])> {
        self.spans.iter().enumerate().filter_map(|(a, span)| {
            if span.len_plus_one == 0 {
                None
            } else {
                let off = span.off as usize;
                Some((a, &self.words[off..off + span.len()]))
            }
        })
    }

    /// Number of non-empty messages.
    pub fn message_count(&self) -> usize {
        self.spans.iter().filter(|s| s.len_plus_one != 0).count()
    }

    /// Largest payload length (in words) over all messages, 0 if empty.
    pub fn max_words(&self) -> usize {
        self.spans.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Collect the messages *received by* node `v` as owned payloads.
    ///
    /// This is the allocating convenience; hot loops should iterate
    /// [`Traffic::inbox`] instead.
    pub fn inbox_of(&self, g: &Graph, v: NodeId) -> Vec<(NodeId, Payload)> {
        self.inbox(g, v).map(|(u, p)| (u, p.to_vec())).collect()
    }

    /// Iterate the messages *received by* node `v` as `(sender, payload)`
    /// without copying, walking the graph's CSR index.
    pub fn inbox<'a>(
        &'a self,
        g: &'a Graph,
        v: NodeId,
    ) -> impl Iterator<Item = (NodeId, &'a [u64])> + 'a {
        g.csr()
            .neighbors(v)
            .iter()
            .filter_map(move |entry| self.get_arc(entry.arc_in).map(|p| (entry.neighbor, p)))
    }

    /// Whether two traffic snapshots agree on every arc.
    pub fn agrees_with(&self, other: &Traffic) -> bool {
        self == other
    }

    /// The arcs on which two snapshots differ.
    pub fn diff_arcs(&self, other: &Traffic) -> Vec<ArcId> {
        (0..self.spans.len().max(other.spans.len()))
            .filter(|&a| self.get_arc(a) != other.get_arc(a))
            .collect()
    }
}

/// Logical equality: same per-arc messages, regardless of arena layout.
impl PartialEq for Traffic {
    fn eq(&self, other: &Self) -> bool {
        let arcs = self.spans.len().max(other.spans.len());
        (0..arcs).all(|a| self.get_arc(a) == other.get_arc(a))
    }
}

impl Eq for Traffic {}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn send_and_receive() {
        let g = generators::path(3);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 1, vec![42]);
        t.send(&g, 2, 1, [7, 8]);
        assert_eq!(t.get(&g, 0, 1), Some(&[42u64][..]));
        assert_eq!(t.get(&g, 1, 0), None);
        assert_eq!(t.message_count(), 2);
        assert_eq!(t.max_words(), 2);
        let inbox = t.inbox_of(&g, 1);
        assert_eq!(inbox.len(), 2);
        assert!(inbox.contains(&(0, vec![42])));
        assert!(inbox.contains(&(2, vec![7, 8])));
        assert!(t.inbox_of(&g, 0).is_empty());
        // The borrowing iterator sees the same inbox.
        let borrowed: Vec<(NodeId, Vec<u64>)> =
            t.inbox(&g, 1).map(|(u, p)| (u, p.to_vec())).collect();
        assert_eq!(borrowed.len(), 2);
    }

    #[test]
    #[should_panic]
    fn send_on_non_edge_panics() {
        let g = generators::path(3);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 2, vec![1]);
    }

    #[test]
    fn diff_and_agreement() {
        let g = generators::cycle(4);
        let mut a = Traffic::new(&g);
        let mut b = Traffic::new(&g);
        assert!(a.agrees_with(&b));
        a.send(&g, 0, 1, vec![1]);
        b.send(&g, 0, 1, vec![1]);
        assert!(a.agrees_with(&b));
        b.send(&g, 1, 2, vec![9]);
        assert!(!a.agrees_with(&b));
        let diff = a.diff_arcs(&b);
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0], g.arc_between(1, 2).unwrap());
    }

    #[test]
    fn arc_level_access() {
        let g = generators::path(2);
        let mut t = Traffic::new(&g);
        let arc = g.arc_between(1, 0).unwrap();
        t.set_arc(arc, Some(&[5]));
        assert_eq!(t.get_arc(arc), Some(&[5u64][..]));
        assert_eq!(t.get(&g, 1, 0), Some(&[5u64][..]));
        t.set_arc(arc, None);
        assert_eq!(t.message_count(), 0);
    }

    #[test]
    fn empty_payload_is_present_but_empty() {
        let g = generators::path(2);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 1, Vec::<u64>::new());
        assert_eq!(t.get(&g, 0, 1), Some(&[][..]));
        assert_eq!(t.message_count(), 1);
        assert_eq!(t.max_words(), 0);
    }

    #[test]
    fn overwrites_reuse_spans_and_equality_is_logical() {
        let g = generators::path(3);
        let mut a = Traffic::new(&g);
        a.send(&g, 0, 1, vec![1, 2, 3]);
        a.send(&g, 0, 1, vec![9]); // shrinking overwrite reuses the span
        let mut b = Traffic::new(&g);
        b.send(&g, 2, 1, vec![5]); // different arena layout
        b.send(&g, 0, 1, vec![9]);
        b.set_arc(g.arc_between(2, 1).unwrap(), None);
        assert_eq!(a, b, "equality must ignore arena layout");
        a.send(&g, 0, 1, vec![4, 5, 6, 7]); // growing overwrite appends
        assert_eq!(a.get(&g, 0, 1), Some(&[4u64, 5, 6, 7][..]));
    }

    #[test]
    fn round_reuse_stops_allocating() {
        let g = generators::complete(8);
        let mut t = Traffic::new(&g);
        let fill = |t: &mut Traffic| {
            for e in g.edges() {
                t.send(&g, e.u, e.v, [e.u as u64, e.v as u64]);
                t.send(&g, e.v, e.u, [e.v as u64]);
            }
        };
        // Warm-up round grows the arena once.
        t.begin_round(&g);
        fill(&mut t);
        let cap = t.word_capacity();
        assert!(cap > 0);
        for _ in 0..100 {
            t.begin_round(&g);
            fill(&mut t);
        }
        assert_eq!(
            t.word_capacity(),
            cap,
            "steady-state rounds must not grow the arena"
        );
    }
}
