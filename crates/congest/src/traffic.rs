//! Per-round message traffic.
//!
//! A [`Traffic`] value holds, for every directed arc of the communication
//! graph, the (optional) payload sent over that arc in a single round.  This is
//! the unit that flows through the network: protocols build a `Traffic`, the
//! network lets the adversary interpose on it, and the (possibly corrupted)
//! `Traffic` is what the receivers observe.

use netgraph::{ArcId, Graph, NodeId};

/// A message payload: a short sequence of machine words.
///
/// The CONGEST model allows `B = O(log n)` bits per edge per round; the
/// simulator treats one `u64` word as `Θ(log n)` bits and reports how many
/// bandwidth-normalised rounds a payload of `w` words would cost.
pub type Payload = Vec<u64>;

/// Per-node protocol output: an arbitrary word sequence.
pub type Output = Vec<u64>;

/// The messages sent over every directed arc in one communication round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traffic {
    arcs: Vec<Option<Payload>>,
}

impl Traffic {
    /// Empty traffic for a graph (no messages on any arc).
    pub fn new(g: &Graph) -> Self {
        Traffic {
            arcs: vec![None; g.arc_count()],
        }
    }

    /// Number of arcs (2·m).
    pub fn arc_slots(&self) -> usize {
        self.arcs.len()
    }

    /// Set the message sent from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` is not an edge of the graph.
    pub fn send(&mut self, g: &Graph, from: NodeId, to: NodeId, payload: Payload) {
        let arc = g
            .arc_between(from, to)
            .unwrap_or_else(|| panic!("({from},{to}) is not an edge"));
        self.arcs[arc] = Some(payload);
    }

    /// The message sent from `from` to `to`, if any.
    pub fn get(&self, g: &Graph, from: NodeId, to: NodeId) -> Option<&Payload> {
        let arc = g.arc_between(from, to)?;
        self.arcs[arc].as_ref()
    }

    /// The message on a specific arc, if any.
    pub fn get_arc(&self, arc: ArcId) -> Option<&Payload> {
        self.arcs.get(arc).and_then(|o| o.as_ref())
    }

    /// Overwrite the message on a specific arc (used by the adversary).
    pub fn set_arc(&mut self, arc: ArcId, payload: Option<Payload>) {
        self.arcs[arc] = payload;
    }

    /// Iterate over all present messages as `(arc, payload)`.
    pub fn iter_present(&self) -> impl Iterator<Item = (ArcId, &Payload)> {
        self.arcs
            .iter()
            .enumerate()
            .filter_map(|(a, p)| p.as_ref().map(|p| (a, p)))
    }

    /// Number of non-empty messages.
    pub fn message_count(&self) -> usize {
        self.arcs.iter().filter(|p| p.is_some()).count()
    }

    /// Largest payload length (in words) over all messages, 0 if empty.
    pub fn max_words(&self) -> usize {
        self.arcs
            .iter()
            .flatten()
            .map(|p| p.len())
            .max()
            .unwrap_or(0)
    }

    /// Collect the messages *received by* node `v`: a list of `(sender, payload)`.
    pub fn inbox_of(&self, g: &Graph, v: NodeId) -> Vec<(NodeId, Payload)> {
        let mut inbox = Vec::new();
        for &(u, e) in g.neighbors(v) {
            let arc = g.arc(e, u, v);
            if let Some(p) = &self.arcs[arc] {
                inbox.push((u, p.clone()));
            }
        }
        inbox
    }

    /// Whether two traffic snapshots agree on every arc.
    pub fn agrees_with(&self, other: &Traffic) -> bool {
        self.arcs == other.arcs
    }

    /// The arcs on which two snapshots differ.
    pub fn diff_arcs(&self, other: &Traffic) -> Vec<ArcId> {
        (0..self.arcs.len().max(other.arcs.len()))
            .filter(|&a| self.arcs.get(a) != other.arcs.get(a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn send_and_receive() {
        let g = generators::path(3);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 1, vec![42]);
        t.send(&g, 2, 1, vec![7, 8]);
        assert_eq!(t.get(&g, 0, 1), Some(&vec![42]));
        assert_eq!(t.get(&g, 1, 0), None);
        assert_eq!(t.message_count(), 2);
        assert_eq!(t.max_words(), 2);
        let inbox = t.inbox_of(&g, 1);
        assert_eq!(inbox.len(), 2);
        assert!(inbox.contains(&(0, vec![42])));
        assert!(inbox.contains(&(2, vec![7, 8])));
        assert!(t.inbox_of(&g, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn send_on_non_edge_panics() {
        let g = generators::path(3);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 2, vec![1]);
    }

    #[test]
    fn diff_and_agreement() {
        let g = generators::cycle(4);
        let mut a = Traffic::new(&g);
        let mut b = Traffic::new(&g);
        assert!(a.agrees_with(&b));
        a.send(&g, 0, 1, vec![1]);
        b.send(&g, 0, 1, vec![1]);
        assert!(a.agrees_with(&b));
        b.send(&g, 1, 2, vec![9]);
        assert!(!a.agrees_with(&b));
        let diff = a.diff_arcs(&b);
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0], g.arc_between(1, 2).unwrap());
    }

    #[test]
    fn arc_level_access() {
        let g = generators::path(2);
        let mut t = Traffic::new(&g);
        let arc = g.arc_between(1, 0).unwrap();
        t.set_arc(arc, Some(vec![5]));
        assert_eq!(t.get_arc(arc), Some(&vec![5]));
        assert_eq!(t.get(&g, 1, 0), Some(&vec![5]));
        t.set_arc(arc, None);
        assert_eq!(t.message_count(), 0);
    }
}
