//! The round-by-round algorithm interface consumed by the compilers.
//!
//! Fischer–Parter compilers take *any* CONGEST algorithm `A` and simulate it
//! round by round, transporting each round's messages resiliently (or
//! securely).  The [`CongestAlgorithm`] trait exposes exactly the hooks such a
//! simulation needs:
//!
//! * [`CongestAlgorithm::send`] — the messages every node sends in round `i`
//!   (a function of what its nodes received in rounds `< i`),
//! * [`CongestAlgorithm::receive`] — delivery of the (possibly corrected)
//!   round-`i` messages,
//! * [`CongestAlgorithm::outputs`] — per-node outputs when the algorithm ends.
//!
//! Implementations keep per-node state internally; the contract (enforced by
//! the honest implementations in `congest-algorithms`, and relied on by the
//! compilers' correctness arguments) is that a node's outgoing messages depend
//! only on *its own* prior inbox and randomness.

use crate::network::Network;
use crate::traffic::{Output, Traffic};

/// A CONGEST algorithm expressed round by round.
///
/// Implement **at least one** of [`CongestAlgorithm::send`] and
/// [`CongestAlgorithm::send_into`] — each has a default implementation in
/// terms of the other, so overriding neither recurses forever.  Hot payloads
/// override `send_into` (the drivers reuse one [`Traffic`] buffer across all
/// rounds, making the steady-state round loop allocation-free); simple or
/// legacy algorithms can keep implementing `send`.
pub trait CongestAlgorithm {
    /// A short human-readable name used in experiment reports.
    fn name(&self) -> String;

    /// The total number of rounds the algorithm runs.
    fn rounds(&self) -> usize;

    /// Outgoing messages for round `round` (0-based), as a fresh value.
    fn send(&mut self, round: usize) -> Traffic {
        let mut out = Traffic::default();
        self.send_into(round, &mut out);
        out
    }

    /// Write the outgoing messages for round `round` into `out`.
    ///
    /// Implementations must start with [`Traffic::begin_round`] (which clears
    /// the buffer and sizes it for the graph) — `out` arrives with the
    /// previous round's contents.
    fn send_into(&mut self, round: usize, out: &mut Traffic) {
        *out = self.send(round);
    }

    /// Deliver the messages received in round `round`.
    fn receive(&mut self, round: usize, inbox: &Traffic);

    /// Per-node outputs once all rounds have been delivered.
    fn outputs(&self) -> Vec<Output>;

    /// The worst-case number of messages the algorithm sends over a single
    /// edge across its whole execution, if known.  The congestion-sensitive
    /// compiler (Theorem 1.3) keys its parameters off this value.
    fn congestion_bound(&self) -> Option<usize> {
        None
    }
}

impl<T: CongestAlgorithm + ?Sized> CongestAlgorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn rounds(&self) -> usize {
        (**self).rounds()
    }
    fn send(&mut self, round: usize) -> Traffic {
        (**self).send(round)
    }
    fn send_into(&mut self, round: usize, out: &mut Traffic) {
        (**self).send_into(round, out)
    }
    fn receive(&mut self, round: usize, inbox: &Traffic) {
        (**self).receive(round, inbox)
    }
    fn outputs(&self) -> Vec<Output> {
        (**self).outputs()
    }
    fn congestion_bound(&self) -> Option<usize> {
        (**self).congestion_bound()
    }
}

/// Run an algorithm in the fault-free setting (no network, no adversary):
/// every round's messages are delivered verbatim.  Returns the outputs.
///
/// One [`Traffic`] buffer is reused across all rounds, so algorithms that
/// override [`CongestAlgorithm::send_into`] run allocation-free here.
pub fn run_fault_free<A: CongestAlgorithm + ?Sized>(alg: &mut A) -> Vec<Output> {
    let mut buf = Traffic::default();
    for round in 0..alg.rounds() {
        alg.send_into(round, &mut buf);
        alg.receive(round, &buf);
    }
    alg.outputs()
}

/// Run an algorithm *uncompiled* on a network: each of its rounds is one
/// network round, so a byzantine adversary corrupts whatever it likes.  This is
/// the baseline the compilers are compared against.
///
/// The round loop reuses one [`Traffic`] buffer through
/// [`Network::exchange_in_place`], so algorithms that override
/// [`CongestAlgorithm::send_into`] run allocation-free at steady state.
pub fn run_on_network<A: CongestAlgorithm + ?Sized>(alg: &mut A, net: &mut Network) -> Vec<Output> {
    let mut buf = Traffic::new(net.graph());
    for round in 0..alg.rounds() {
        alg.send_into(round, &mut buf);
        net.exchange_in_place(&mut buf);
        alg.receive(round, &buf);
    }
    alg.outputs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AdversaryRole, CorruptionBudget, CorruptionMode, FixedEdges};
    use netgraph::{generators, Graph};

    /// A toy algorithm: in round 0 every node sends its id to all neighbours;
    /// the output of a node is the sorted list of ids it received.
    struct ExchangeIds {
        graph: Graph,
        received: Vec<Vec<u64>>,
    }

    impl ExchangeIds {
        fn new(graph: Graph) -> Self {
            let n = graph.node_count();
            ExchangeIds {
                graph,
                received: vec![Vec::new(); n],
            }
        }
    }

    impl CongestAlgorithm for ExchangeIds {
        fn name(&self) -> String {
            "exchange-ids".into()
        }
        fn rounds(&self) -> usize {
            1
        }
        fn send(&mut self, _round: usize) -> Traffic {
            let mut t = Traffic::new(&self.graph);
            for v in self.graph.nodes() {
                for &(u, _) in self.graph.neighbors(v) {
                    t.send(&self.graph, v, u, vec![v as u64]);
                }
            }
            t
        }
        fn receive(&mut self, _round: usize, inbox: &Traffic) {
            for v in self.graph.nodes() {
                for (_, payload) in inbox.inbox_of(&self.graph, v) {
                    self.received[v].push(payload[0]);
                }
                self.received[v].sort_unstable();
            }
        }
        fn outputs(&self) -> Vec<Output> {
            self.received.clone()
        }
        fn congestion_bound(&self) -> Option<usize> {
            Some(1)
        }
    }

    #[test]
    fn fault_free_run_collects_neighbours() {
        let g = generators::cycle(5);
        let mut alg = ExchangeIds::new(g);
        let out = run_fault_free(&mut alg);
        assert_eq!(out[0], vec![1, 4]);
        assert_eq!(out[2], vec![1, 3]);
    }

    #[test]
    fn uncompiled_run_on_clean_network_matches_fault_free() {
        let g = generators::cycle(5);
        let fault_free = run_fault_free(&mut ExchangeIds::new(g.clone()));
        let mut net = Network::fault_free(g.clone());
        let networked = run_on_network(&mut ExchangeIds::new(g), &mut net);
        assert_eq!(fault_free, networked);
        assert_eq!(net.round(), 1);
    }

    #[test]
    fn uncompiled_run_is_vulnerable_to_byzantine_corruption() {
        let g = generators::cycle(5);
        let clean = run_fault_free(&mut ExchangeIds::new(g.clone()));
        let target = g.edge_between(0, 1).unwrap();
        let strategy = FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(999));
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Static(vec![target]),
            0,
        );
        let corrupted = run_on_network(&mut ExchangeIds::new(g), &mut net);
        assert_ne!(clean, corrupted, "the baseline must be breakable");
        assert!(corrupted[0].contains(&999) || corrupted[1].contains(&999));
    }
}
