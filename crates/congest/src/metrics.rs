//! Execution metrics: rounds, messages, congestion, bandwidth, corruption.
//!
//! Every experiment reports these alongside the protocol's output so the
//! round-overhead shapes claimed by the paper's theorems can be compared
//! against measurements.

use crate::traffic::Traffic;
use netgraph::{EdgeId, Graph};

/// Counters accumulated over an execution on a [`crate::network::Network`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of communication rounds executed (calls to `exchange`).
    pub rounds: usize,
    /// Bandwidth-normalised rounds: each exchange is charged
    /// `ceil(max payload words / bandwidth_words)`.
    pub bandwidth_rounds: usize,
    /// Total number of (non-empty) messages sent.
    pub messages: usize,
    /// Total number of payload words sent.
    pub words: usize,
    /// Per-edge count of messages (both directions) — the congestion profile.
    pub edge_messages: Vec<usize>,
    /// Number of edge-rounds the adversary controlled.
    pub corrupted_edge_rounds: usize,
    /// Number of individual messages the adversary actually altered or dropped.
    pub corrupted_messages: usize,
}

impl Metrics {
    /// Fresh metrics for a graph.
    pub fn new(g: &Graph) -> Self {
        Metrics {
            edge_messages: vec![0; g.edge_count()],
            ..Default::default()
        }
    }

    /// Maximum number of messages that crossed any single edge (the congestion
    /// of the executed algorithm, in the paper's sense).
    pub fn max_edge_congestion(&self) -> usize {
        self.edge_messages.iter().copied().max().unwrap_or(0)
    }

    /// Compress the dense per-edge congestion profile into percentiles plus
    /// the `k` hottest edges.  `edge_messages` is `Θ(m)` and blows up JSONL
    /// output on large graphs; this summary is what reports should carry.
    pub fn congestion_summary(&self, k: usize) -> CongestionSummary {
        let mut sorted = self.edge_messages.clone();
        sorted.sort_unstable();
        // Nearest-rank percentile: index ⌈p·n⌉ − 1 on the sorted counts.
        let pct = |p: f64| -> usize {
            if sorted.is_empty() {
                return 0;
            }
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let mut by_load: Vec<EdgeId> = (0..self.edge_messages.len()).collect();
        // Deterministic: ties broken by edge id.
        by_load.sort_by_key(|&e| (std::cmp::Reverse(self.edge_messages[e]), e));
        let topk = by_load
            .into_iter()
            .take(k)
            .map(|e| (e, self.edge_messages[e]))
            .filter(|&(_, c)| c > 0)
            .collect();
        CongestionSummary {
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: *sorted.last().unwrap_or(&0),
            topk,
        }
    }

    pub(crate) fn record_exchange(&mut self, traffic: &Traffic, bandwidth_words: usize) {
        self.rounds += 1;
        let max_words = traffic.max_words();
        self.bandwidth_rounds += max_words.div_ceil(bandwidth_words).max(1);
        for (arc, payload) in traffic.iter_present() {
            self.messages += 1;
            self.words += payload.len();
            self.edge_messages[Graph::edge_of(arc)] += 1;
        }
    }

    pub(crate) fn record_corruption(&mut self, edges: &[EdgeId], altered_messages: usize) {
        self.corrupted_edge_rounds += edges.len();
        self.corrupted_messages += altered_messages;
    }
}

/// Bounded congestion digest of [`Metrics::edge_messages`]: nearest-rank
/// percentiles over all edges plus the `k` hottest `(edge, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CongestionSummary {
    /// Median per-edge message count.
    pub p50: usize,
    /// 90th-percentile per-edge message count.
    pub p90: usize,
    /// 99th-percentile per-edge message count.
    pub p99: usize,
    /// Hottest edge's message count (= [`Metrics::max_edge_congestion`]).
    pub max: usize,
    /// The `k` hottest edges with their counts, hottest first (ties broken by
    /// edge id; zero-load edges omitted).
    pub topk: Vec<(EdgeId, usize)>,
}

impl CongestionSummary {
    /// Mean load over the retained top-k edges (0.0 when none carried traffic).
    pub fn topk_mean(&self) -> f64 {
        if self.topk.is_empty() {
            return 0.0;
        }
        self.topk.iter().map(|&(_, c)| c as f64).sum::<f64>() / self.topk.len() as f64
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} bw_rounds={} msgs={} words={} max_cong={} corrupted_edge_rounds={} corrupted_msgs={}",
            self.rounds,
            self.bandwidth_rounds,
            self.messages,
            self.words,
            self.max_edge_congestion(),
            self.corrupted_edge_rounds,
            self.corrupted_messages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    #[test]
    fn record_exchange_counts() {
        let g = generators::path(3);
        let mut m = Metrics::new(&g);
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 1, vec![1, 2, 3]);
        t.send(&g, 1, 0, vec![4]);
        m.record_exchange(&t, 2);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.bandwidth_rounds, 2); // 3 words / 2 per round
        assert_eq!(m.messages, 2);
        assert_eq!(m.words, 4);
        assert_eq!(m.edge_messages[g.edge_between(0, 1).unwrap()], 2);
        assert_eq!(m.max_edge_congestion(), 2);
    }

    #[test]
    fn empty_exchange_still_counts_a_round() {
        let g = generators::path(2);
        let mut m = Metrics::new(&g);
        m.record_exchange(&Traffic::new(&g), 2);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.bandwidth_rounds, 1);
        assert_eq!(m.messages, 0);
    }

    #[test]
    fn corruption_counters() {
        let g = generators::path(3);
        let mut m = Metrics::new(&g);
        m.record_corruption(&[0, 1], 3);
        m.record_corruption(&[1], 1);
        assert_eq!(m.corrupted_edge_rounds, 3);
        assert_eq!(m.corrupted_messages, 4);
    }

    #[test]
    fn congestion_summary_percentiles_and_topk() {
        let g = generators::complete(5); // 10 edges
        let mut m = Metrics::new(&g);
        m.edge_messages = vec![0, 1, 1, 2, 2, 3, 3, 4, 9, 20];
        let s = m.congestion_summary(3);
        assert_eq!(s.max, 20);
        assert_eq!(s.p50, 2);
        assert_eq!(s.p90, 9);
        assert_eq!(s.p99, 20);
        assert_eq!(s.topk, vec![(9, 20), (8, 9), (7, 4)]);
        assert!((s.topk_mean() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_summary_ties_break_by_edge_id() {
        let g = generators::path(4); // 3 edges
        let mut m = Metrics::new(&g);
        m.edge_messages = vec![5, 5, 5];
        let s = m.congestion_summary(2);
        assert_eq!(s.topk, vec![(0, 5), (1, 5)]);
    }

    #[test]
    fn congestion_summary_empty_and_idle_edges() {
        let m = Metrics::default();
        let s = m.congestion_summary(4);
        assert_eq!((s.p50, s.p90, s.p99, s.max), (0, 0, 0, 0));
        assert!(s.topk.is_empty());
        assert_eq!(s.topk_mean(), 0.0);
        let g = generators::path(3);
        let idle = Metrics::new(&g);
        assert!(idle.congestion_summary(4).topk.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let g = generators::path(2);
        let m = Metrics::new(&g);
        assert!(!format!("{m}").is_empty());
    }
}
