//! Edge adversaries: who is corrupted, when, and how.
//!
//! The paper's adversarial model (Section 1.4) is an all-powerful entity that
//! each round controls a set of edges whose identity the nodes do not know.
//! Two *roles* are distinguished:
//!
//! * **eavesdropper** — passively records the traffic on controlled edges
//!   (the security experiments inspect the recorded view);
//! * **byzantine** — rewrites the traffic on controlled edges arbitrarily.
//!
//! Orthogonally, a *budget* constrains which sets may be controlled:
//! a fixed set (static adversary), at most `f` edges per round (mobile
//! adversary), or a total of `f·r` edge-rounds (round-error-rate adversary).
//! The [`crate::network::Network`] enforces the budget; strategies only express
//! *intent*.
//!
//! Strategies mark the edges they want into a reusable [`EdgeSet`]
//! ([`AdversaryStrategy::mark_edges`]) instead of returning a fresh
//! collection every round, so the per-round engine path is allocation-free;
//! [`AdversaryStrategy::choose_edges`] remains as the allocating convenience
//! for tests and diagnostics.

use crate::traffic::{Payload, Traffic};
use netgraph::{EdgeId, Graph, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Whether the adversary reads or rewrites the traffic it controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryRole {
    /// Record traffic on controlled edges (security experiments).
    Eavesdropper,
    /// Corrupt traffic on controlled edges (resilience experiments).
    Byzantine,
}

/// The budget constraining which edges may be controlled over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptionBudget {
    /// No edges may ever be controlled (fault-free execution).
    None,
    /// A fixed set of edges is controlled in every round (static adversary).
    Static(Vec<EdgeId>),
    /// At most `f` (arbitrary, possibly different) edges per round (mobile adversary).
    Mobile {
        /// The per-round edge bound.
        f: usize,
    },
    /// A total budget of `total` edge-rounds across the whole execution
    /// (round-error-rate adversary: `total = f · r`).
    RoundErrorRate {
        /// The whole-execution edge-round budget.
        total: usize,
    },
}

impl CorruptionBudget {
    /// The per-round cap implied by the budget given the remaining allowance.
    pub(crate) fn round_cap(&self, spent: usize) -> usize {
        match self {
            CorruptionBudget::None => 0,
            CorruptionBudget::Static(edges) => edges.len(),
            CorruptionBudget::Mobile { f } => *f,
            CorruptionBudget::RoundErrorRate { total } => total.saturating_sub(spent),
        }
    }

    /// Whether an edge is eligible under a static budget.
    pub(crate) fn allows_edge(&self, e: EdgeId) -> bool {
        match self {
            CorruptionBudget::Static(edges) => edges.contains(&e),
            CorruptionBudget::None => false,
            _ => true,
        }
    }
}

/// A deduplicating, insertion-ordered edge set backed by a reusable bitset.
///
/// This is the vehicle strategies mark their wanted edges into: the network
/// owns one, [`EdgeSet::reset`]s it each round (an `O(m/64)` word fill, no
/// allocation at steady state), and reads the marked edges back in insertion
/// order — the order budget clamping honours.
#[derive(Debug, Clone, Default)]
pub struct EdgeSet {
    /// One bit per edge id (grown on demand).
    bits: Vec<u64>,
    /// Marked edges in first-insertion order.
    order: Vec<EdgeId>,
}

impl EdgeSet {
    /// An empty set (no capacity reserved yet).
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Clear the set and make sure `edge_count` edges fit without growing.
    pub fn reset(&mut self, edge_count: usize) {
        self.order.clear();
        self.bits.clear();
        self.bits.resize(edge_count.div_ceil(64), 0);
    }

    /// Mark an edge; returns `true` if it was newly inserted.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let (word, bit) = (e / 64, 1u64 << (e % 64));
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        if self.bits[word] & bit != 0 {
            return false;
        }
        self.bits[word] |= bit;
        self.order.push(e);
        true
    }

    /// Whether `e` is marked.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.bits
            .get(e / 64)
            .is_some_and(|w| w & (1u64 << (e % 64)) != 0)
    }

    /// Number of marked edges.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The marked edges in first-insertion order.
    pub fn as_slice(&self) -> &[EdgeId] {
        &self.order
    }

    /// Iterate the marked edges in first-insertion order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.order.iter().copied()
    }
}

/// How a byzantine adversary rewrites a controlled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Replace the payload with uniformly random words of the same length
    /// (length 1 if the original message was empty).
    ReplaceRandom,
    /// XOR the first word with 1 (minimal, hard-to-detect corruption).
    FlipLowBit,
    /// Drop the message entirely.
    Drop,
    /// Replace with a fixed word repeated to the original length.
    Constant(u64),
}

impl CorruptionMode {
    /// Apply the corruption into a reusable buffer: `out` receives the
    /// replacement payload and the return value says whether a message is
    /// present at all (`false` ⇒ the message is dropped).  This is the
    /// allocation-free path the network's round engine uses.
    pub fn apply_into<R: Rng + ?Sized>(
        &self,
        original: Option<&[u64]>,
        rng: &mut R,
        out: &mut Vec<u64>,
    ) -> bool {
        out.clear();
        match self {
            CorruptionMode::ReplaceRandom => {
                let len = original.map(|p| p.len().max(1)).unwrap_or(1);
                out.extend((0..len).map(|_| rng.gen::<u64>()));
                true
            }
            CorruptionMode::FlipLowBit => {
                match original {
                    Some(p) if !p.is_empty() => out.extend_from_slice(p),
                    _ => out.push(0),
                }
                out[0] ^= 1;
                true
            }
            CorruptionMode::Drop => false,
            CorruptionMode::Constant(w) => {
                let len = original.map(|p| p.len().max(1)).unwrap_or(1);
                out.extend(std::iter::repeat_n(*w, len));
                true
            }
        }
    }

    /// Apply the corruption to an optional payload, allocating the result
    /// (convenience wrapper over [`CorruptionMode::apply_into`]).
    pub fn apply<R: Rng + ?Sized>(
        &self,
        original: Option<&Payload>,
        rng: &mut R,
    ) -> Option<Payload> {
        let mut out = Vec::new();
        self.apply_into(original.map(|p| p.as_slice()), rng, &mut out)
            .then_some(out)
    }
}

/// A strategy deciding which edges the adversary *wants* to control each round.
///
/// The network intersects the request with the configured budget, so a strategy
/// never needs to worry about exceeding `f`; asking for more than allowed just
/// means the surplus is ignored (in request order).
///
/// Implement [`AdversaryStrategy::mark_edges`]; the network calls it with a
/// recycled [`EdgeSet`] so the hot path never allocates.
pub trait AdversaryStrategy: Send {
    /// Human-readable name for experiment reports.
    fn name(&self) -> String;

    /// Mark the edges the adversary wants to control in this round into
    /// `out` (already cleared and sized by the caller).  The strategy sees
    /// the full outgoing traffic of the round (the adversary is all-powerful
    /// and rushing), but not the nodes' private randomness.  Insertion order
    /// is the priority order budget clamping honours.
    fn mark_edges(&mut self, round: usize, graph: &Graph, traffic: &Traffic, out: &mut EdgeSet);

    /// Edges the adversary wants to control in this round, as an owned,
    /// deduplicated list (allocating convenience over
    /// [`AdversaryStrategy::mark_edges`], for tests and diagnostics).
    fn choose_edges(&mut self, round: usize, graph: &Graph, traffic: &Traffic) -> Vec<EdgeId> {
        let mut out = EdgeSet::new();
        out.reset(graph.edge_count());
        self.mark_edges(round, graph, traffic, &mut out);
        out.as_slice().to_vec()
    }

    /// How controlled byzantine messages are rewritten (ignored for eavesdroppers).
    fn corruption_mode(&self) -> CorruptionMode {
        CorruptionMode::ReplaceRandom
    }
}

/// A strategy that never controls any edge (fault-free baseline).
#[derive(Debug, Default, Clone)]
pub struct NoAdversary;

impl AdversaryStrategy for NoAdversary {
    fn name(&self) -> String {
        "none".into()
    }
    fn mark_edges(
        &mut self,
        _round: usize,
        _graph: &Graph,
        _traffic: &Traffic,
        _out: &mut EdgeSet,
    ) {
    }
}

/// Controls the same fixed set of edges every round (the classical static adversary).
#[derive(Debug, Clone)]
pub struct FixedEdges {
    edges: Vec<EdgeId>,
    mode: CorruptionMode,
}

impl FixedEdges {
    /// Control exactly these edges every round.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        FixedEdges {
            edges,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for FixedEdges {
    fn name(&self) -> String {
        format!("static({})", self.edges.len())
    }
    fn mark_edges(&mut self, _round: usize, _graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        for &e in &self.edges {
            out.insert(e);
        }
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Controls `f` uniformly random edges, re-drawn every round — the canonical
/// mobile adversary.
#[derive(Debug, Clone)]
pub struct RandomMobile {
    f: usize,
    rng: ChaCha8Rng,
    mode: CorruptionMode,
}

impl RandomMobile {
    /// Control `f` random edges per round, using `seed` for reproducibility.
    pub fn new(f: usize, seed: u64) -> Self {
        RandomMobile {
            f,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for RandomMobile {
    fn name(&self) -> String {
        format!("random-mobile(f={})", self.f)
    }
    fn mark_edges(&mut self, _round: usize, graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        let m = graph.edge_count();
        if m == 0 {
            return;
        }
        let mut tries = 0;
        while out.len() < self.f.min(m) && tries < 20 * self.f.max(1) {
            out.insert(self.rng.gen_range(0..m));
            tries += 1;
        }
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Sweeps over the edge set round-robin, `f` edges at a time — guarantees that
/// *every* edge is eventually corrupted, which defeats any protocol relying on
/// some edge staying clean forever (the attack that breaks static compilers in
/// the mobile setting).
#[derive(Debug, Clone)]
pub struct SweepMobile {
    f: usize,
    cursor: usize,
    mode: CorruptionMode,
}

impl SweepMobile {
    /// Control `f` consecutive edges per round, advancing the window each round.
    pub fn new(f: usize) -> Self {
        SweepMobile {
            f,
            cursor: 0,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for SweepMobile {
    fn name(&self) -> String {
        format!("sweep-mobile(f={})", self.f)
    }
    fn mark_edges(&mut self, _round: usize, graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        let m = graph.edge_count();
        if m == 0 {
            return;
        }
        for i in 0..self.f.min(m) {
            out.insert((self.cursor + i) % m);
        }
        self.cursor = (self.cursor + self.f) % m;
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Prefers the edges currently carrying the most data ("greedy heaviest"):
/// a natural attack against aggregation trees, where high-traffic edges are the
/// ones carrying combined sketches.
#[derive(Debug, Clone)]
pub struct GreedyHeaviest {
    f: usize,
    mode: CorruptionMode,
    /// Reused per-edge weight accumulator.
    weight: Vec<usize>,
    /// Reused ranking scratch.
    ranked: Vec<EdgeId>,
}

impl GreedyHeaviest {
    /// Control the `f` edges with the largest total payload each round.
    pub fn new(f: usize) -> Self {
        GreedyHeaviest {
            f,
            mode: CorruptionMode::ReplaceRandom,
            weight: Vec::new(),
            ranked: Vec::new(),
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Rank all edges by a weight vector, heaviest first (ties by edge id), and
/// mark the top `f` — the shared core of [`GreedyHeaviest`] and
/// [`AdaptiveHeaviest`].
fn mark_heaviest(weight: &[usize], ranked: &mut Vec<EdgeId>, f: usize, out: &mut EdgeSet) {
    ranked.clear();
    ranked.extend(0..weight.len());
    ranked.sort_unstable_by_key(|&e| (std::cmp::Reverse(weight[e]), e));
    for &e in ranked.iter().take(f) {
        out.insert(e);
    }
}

impl AdversaryStrategy for GreedyHeaviest {
    fn name(&self) -> String {
        format!("greedy-heaviest(f={})", self.f)
    }
    fn mark_edges(&mut self, _round: usize, graph: &Graph, traffic: &Traffic, out: &mut EdgeSet) {
        self.weight.clear();
        self.weight.resize(graph.edge_count(), 0);
        for (arc, payload) in traffic.iter_present() {
            self.weight[Graph::edge_of(arc)] += payload.len();
        }
        mark_heaviest(&self.weight, &mut self.ranked, self.f, out);
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Re-targets using the loads it *observed in the previous round*: the rushing
/// adversary of [`GreedyHeaviest`] sees the current round before choosing, but
/// an adaptive adversary that must commit its taps before the round starts can
/// only extrapolate — the natural attack model against pipelines whose traffic
/// pattern is stable across rounds (aggregation trees, keystream exchanges).
///
/// Round 0 has no observation yet, so the lowest-id edges are attacked first.
#[derive(Debug, Clone)]
pub struct AdaptiveHeaviest {
    f: usize,
    mode: CorruptionMode,
    /// Loads observed in the previous round.
    prev: Vec<usize>,
    /// Reused ranking scratch.
    ranked: Vec<EdgeId>,
}

impl AdaptiveHeaviest {
    /// Control the `f` edges that carried the largest total payload in the
    /// previous round.
    pub fn new(f: usize) -> Self {
        AdaptiveHeaviest {
            f,
            mode: CorruptionMode::ReplaceRandom,
            prev: Vec::new(),
            ranked: Vec::new(),
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for AdaptiveHeaviest {
    fn name(&self) -> String {
        format!("adaptive-heaviest(f={})", self.f)
    }
    fn mark_edges(&mut self, _round: usize, graph: &Graph, traffic: &Traffic, out: &mut EdgeSet) {
        let m = graph.edge_count();
        if self.prev.len() != m {
            self.prev.clear();
            self.prev.resize(m, 0);
        }
        // Target by last round's observation …
        mark_heaviest(&self.prev, &mut self.ranked, self.f, out);
        // … then observe the current round for the next one.
        self.prev.fill(0);
        for (arc, payload) in traffic.iter_present() {
            self.prev[Graph::edge_of(arc)] += payload.len();
        }
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Concentrates the whole budget on one node's incident edges — the eclipse
/// attack.  With `f ≥ deg(v)` the victim is fully cut off every round; with a
/// smaller budget the window rotates through the incident edges so every one
/// of them is eventually hit (no edge of the victim stays clean forever).
#[derive(Debug, Clone)]
pub struct EclipseNode {
    node: NodeId,
    f: usize,
    cursor: usize,
    mode: CorruptionMode,
}

impl EclipseNode {
    /// Attack up to `f` of `node`'s incident edges per round.
    pub fn new(node: NodeId, f: usize) -> Self {
        EclipseNode {
            node,
            f,
            cursor: 0,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The node under attack.
    pub fn target(&self) -> NodeId {
        self.node
    }
}

impl AdversaryStrategy for EclipseNode {
    fn name(&self) -> String {
        format!("eclipse(v={},f={})", self.node, self.f)
    }
    fn mark_edges(&mut self, _round: usize, graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        if self.node >= graph.node_count() {
            return;
        }
        let incident = graph.neighbors(self.node);
        let deg = incident.len();
        if deg == 0 {
            return;
        }
        for i in 0..self.f.min(deg) {
            out.insert(incident[(self.cursor + i) % deg].1);
        }
        self.cursor = (self.cursor + self.f) % deg;
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// A bursty adversary for the round-error-rate model: quiet for `quiet` rounds,
/// then corrupts as many edges as it can for `burst` rounds, repeating.
/// Combined with a [`CorruptionBudget::RoundErrorRate`] budget this realises
/// the "invest a large budget of faults in specific rounds" behaviour of
/// Section 4.
#[derive(Debug, Clone)]
pub struct BurstAdversary {
    quiet: usize,
    burst: usize,
    per_burst_round: usize,
    rng: ChaCha8Rng,
    mode: CorruptionMode,
}

impl BurstAdversary {
    /// Quiet for `quiet` rounds, then corrupt `per_burst_round` random edges in
    /// each of the next `burst` rounds, repeating.
    pub fn new(quiet: usize, burst: usize, per_burst_round: usize, seed: u64) -> Self {
        BurstAdversary {
            quiet,
            burst,
            per_burst_round,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for BurstAdversary {
    fn name(&self) -> String {
        format!(
            "burst(quiet={},burst={},per={})",
            self.quiet, self.burst, self.per_burst_round
        )
    }
    fn mark_edges(&mut self, round: usize, graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        let period = self.quiet + self.burst;
        if period == 0 || round % period < self.quiet {
            return;
        }
        let m = graph.edge_count();
        if m == 0 {
            return;
        }
        let mut tries = 0;
        while out.len() < self.per_burst_round.min(m) && tries < 20 * self.per_burst_round.max(1) {
            out.insert(self.rng.gen_range(0..m));
            tries += 1;
        }
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// An eavesdropping schedule that follows an explicit per-round list of edges —
/// used by the security tests to couple the adversary's view across executions
/// on different inputs.
#[derive(Debug, Clone)]
pub struct ScheduledEdges {
    schedule: Vec<Vec<EdgeId>>,
}

impl ScheduledEdges {
    /// Control exactly `schedule[i]` in round `i` (empty after the schedule ends).
    pub fn new(schedule: Vec<Vec<EdgeId>>) -> Self {
        ScheduledEdges { schedule }
    }
}

impl AdversaryStrategy for ScheduledEdges {
    fn name(&self) -> String {
        format!("scheduled({} rounds)", self.schedule.len())
    }
    fn mark_edges(&mut self, round: usize, _graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        if let Some(edges) = self.schedule.get(round) {
            for &e in edges {
                out.insert(e);
            }
        }
    }
}

/// A concrete per-round corruption schedule applied **cyclically**: round `r`
/// corrupts the edges of entry `r % len`, forever.  This is the runtime form
/// of the red-team search's synthesized adversaries
/// (`AdversaryDef::Synthesized`): the whole attack is data, so a found
/// counterexample replays byte-identically from its serialized spec.
///
/// Unlike [`ScheduledEdges`] (an eavesdrop coupling tool that goes quiet when
/// its list ends), the cyclic application means a 1-entry schedule is exactly
/// the classical static adversary and an `R`-entry schedule attacks every
/// round of an arbitrarily long compiled execution — which is what makes
/// shrinking along the rounds dimension meaningful.
#[derive(Debug, Clone)]
pub struct SynthesizedSchedule {
    schedule: Vec<Vec<EdgeId>>,
    mode: CorruptionMode,
}

impl SynthesizedSchedule {
    /// Corrupt `schedule[round % schedule.len()]` every round (an empty
    /// schedule never corrupts anything).
    pub fn new(schedule: Vec<Vec<EdgeId>>) -> Self {
        SynthesizedSchedule {
            schedule,
            mode: CorruptionMode::FlipLowBit,
        }
    }

    /// Select the corruption mode (default: [`CorruptionMode::FlipLowBit`],
    /// the minimal hard-to-detect corruption red-team counterexamples aim
    /// for).
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The per-round edge budget the schedule implies: the longest per-round
    /// entry (at least 1, so the budget stays meaningful for empty
    /// schedules).
    pub fn max_edges_per_round(&self) -> usize {
        self.schedule
            .iter()
            .map(|edges| edges.len())
            .max()
            .unwrap_or(0)
            .max(1)
    }
}

impl AdversaryStrategy for SynthesizedSchedule {
    fn name(&self) -> String {
        format!(
            "synthesized(r={},f={})",
            self.schedule.len(),
            self.max_edges_per_round()
        )
    }
    fn mark_edges(&mut self, round: usize, _graph: &Graph, _traffic: &Traffic, out: &mut EdgeSet) {
        if self.schedule.is_empty() {
            return;
        }
        for &e in &self.schedule[round % self.schedule.len()] {
            out.insert(e);
        }
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn empty_traffic(g: &Graph) -> Traffic {
        Traffic::new(g)
    }

    #[test]
    fn budgets_round_caps() {
        assert_eq!(CorruptionBudget::None.round_cap(0), 0);
        assert_eq!(CorruptionBudget::Mobile { f: 3 }.round_cap(100), 3);
        assert_eq!(CorruptionBudget::Static(vec![1, 2]).round_cap(0), 2);
        let rate = CorruptionBudget::RoundErrorRate { total: 10 };
        assert_eq!(rate.round_cap(0), 10);
        assert_eq!(rate.round_cap(7), 3);
        assert_eq!(rate.round_cap(12), 0);
    }

    #[test]
    fn edge_set_dedups_and_keeps_order() {
        let mut s = EdgeSet::new();
        s.reset(100);
        assert!(s.insert(7));
        assert!(s.insert(3));
        assert!(!s.insert(7));
        assert!(s.insert(99));
        assert!(s.contains(3) && s.contains(7) && s.contains(99));
        assert!(!s.contains(4));
        assert_eq!(s.as_slice(), &[7, 3, 99]);
        assert_eq!(s.len(), 3);
        s.reset(100);
        assert!(s.is_empty());
        assert!(!s.contains(7));
        // Inserting beyond the reset capacity grows the bitset.
        assert!(s.insert(1000));
        assert!(s.contains(1000));
    }

    #[test]
    fn corruption_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let orig = vec![5u64, 6];
        assert_eq!(CorruptionMode::Drop.apply(Some(&orig), &mut rng), None);
        assert_eq!(
            CorruptionMode::FlipLowBit.apply(Some(&orig), &mut rng),
            Some(vec![4, 6])
        );
        assert_eq!(
            CorruptionMode::Constant(9).apply(Some(&orig), &mut rng),
            Some(vec![9, 9])
        );
        let r = CorruptionMode::ReplaceRandom
            .apply(Some(&orig), &mut rng)
            .unwrap();
        assert_eq!(r.len(), 2);
        // Empty original still yields a (non-empty) fabricated message.
        assert_eq!(
            CorruptionMode::Constant(3).apply(None, &mut rng),
            Some(vec![3])
        );
    }

    #[test]
    fn apply_into_reuses_the_buffer() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut out = Vec::new();
        assert!(CorruptionMode::Constant(7).apply_into(Some(&[1, 2, 3]), &mut rng, &mut out));
        assert_eq!(out, vec![7, 7, 7]);
        let cap = out.capacity();
        assert!(!CorruptionMode::Drop.apply_into(Some(&[1]), &mut rng, &mut out));
        assert!(CorruptionMode::FlipLowBit.apply_into(None, &mut rng, &mut out));
        assert_eq!(out, vec![1]);
        assert_eq!(
            out.capacity(),
            cap,
            "shrinking applications must not realloc"
        );
    }

    #[test]
    fn random_mobile_respects_f_and_is_reproducible() {
        let g = generators::complete(8);
        let t = empty_traffic(&g);
        let mut a = RandomMobile::new(4, 99);
        let mut b = RandomMobile::new(4, 99);
        for round in 0..10 {
            let ea = a.choose_edges(round, &g, &t);
            let eb = b.choose_edges(round, &g, &t);
            assert_eq!(ea, eb);
            assert!(ea.len() <= 4);
            let unique: std::collections::HashSet<_> = ea.iter().collect();
            assert_eq!(unique.len(), ea.len());
        }
    }

    #[test]
    fn sweep_covers_all_edges() {
        let g = generators::cycle(7);
        let t = empty_traffic(&g);
        let mut s = SweepMobile::new(2);
        let mut covered = std::collections::HashSet::new();
        for round in 0..10 {
            for e in s.choose_edges(round, &g, &t) {
                covered.insert(e);
            }
        }
        assert_eq!(covered.len(), g.edge_count());
    }

    #[test]
    fn greedy_heaviest_targets_busy_edges() {
        let g = generators::path(4);
        let mut t = Traffic::new(&g);
        t.send(&g, 1, 2, vec![1, 2, 3, 4, 5]);
        t.send(&g, 0, 1, vec![1]);
        let mut adv = GreedyHeaviest::new(1);
        let chosen = adv.choose_edges(0, &g, &t);
        assert_eq!(chosen, vec![g.edge_between(1, 2).unwrap()]);
    }

    #[test]
    fn adaptive_heaviest_lags_one_round_behind() {
        let g = generators::path(4);
        let busy = {
            let mut t = Traffic::new(&g);
            t.send(&g, 1, 2, vec![1, 2, 3, 4, 5]);
            t
        };
        let quiet = empty_traffic(&g);
        let mut adv = AdaptiveHeaviest::new(1);
        // Round 0: nothing observed yet — falls back to the lowest edge id.
        assert_eq!(adv.choose_edges(0, &g, &busy), vec![0]);
        // Round 1: now it targets what was busy in round 0, even though the
        // current round is quiet.
        assert_eq!(
            adv.choose_edges(1, &g, &quiet),
            vec![g.edge_between(1, 2).unwrap()]
        );
        // Round 2: last round was quiet — back to the fallback.
        assert_eq!(adv.choose_edges(2, &g, &quiet), vec![0]);
    }

    #[test]
    fn eclipse_node_rotates_through_incident_edges() {
        let g = generators::complete(5);
        let t = empty_traffic(&g);
        let mut adv = EclipseNode::new(2, 2);
        assert_eq!(adv.target(), 2);
        let mut covered = std::collections::HashSet::new();
        for round in 0..4 {
            let chosen = adv.choose_edges(round, &g, &t);
            assert!(chosen.len() <= 2);
            for e in chosen {
                assert!(g.edge(e).touches(2), "edge {e} must touch the victim");
                covered.insert(e);
            }
        }
        assert_eq!(covered.len(), g.degree(2), "rotation must cover all edges");
        // A full-degree budget cuts the victim off completely every round.
        let mut full = EclipseNode::new(2, 4);
        assert_eq!(full.choose_edges(0, &g, &t).len(), 4);
        // An out-of-range victim is a no-op, not a panic.
        let mut oob = EclipseNode::new(99, 2);
        assert!(oob.choose_edges(0, &g, &t).is_empty());
    }

    #[test]
    fn burst_adversary_is_quiet_then_bursts() {
        let g = generators::complete(5);
        let t = empty_traffic(&g);
        let mut adv = BurstAdversary::new(3, 2, 4, 1);
        assert!(adv.choose_edges(0, &g, &t).is_empty());
        assert!(adv.choose_edges(2, &g, &t).is_empty());
        assert!(!adv.choose_edges(3, &g, &t).is_empty());
        assert!(!adv.choose_edges(4, &g, &t).is_empty());
        assert!(adv.choose_edges(5, &g, &t).is_empty());
    }

    #[test]
    fn scheduled_edges_follow_schedule() {
        let g = generators::cycle(4);
        let t = empty_traffic(&g);
        let mut adv = ScheduledEdges::new(vec![vec![0], vec![], vec![1, 2]]);
        assert_eq!(adv.choose_edges(0, &g, &t), vec![0]);
        assert!(adv.choose_edges(1, &g, &t).is_empty());
        assert_eq!(adv.choose_edges(2, &g, &t), vec![1, 2]);
        assert!(adv.choose_edges(3, &g, &t).is_empty());
    }

    #[test]
    fn static_budget_filters_edges() {
        let b = CorruptionBudget::Static(vec![3, 5]);
        assert!(b.allows_edge(3));
        assert!(!b.allows_edge(4));
        assert!(CorruptionBudget::Mobile { f: 1 }.allows_edge(4));
        assert!(!CorruptionBudget::None.allows_edge(0));
    }
}
