//! Edge adversaries: who is corrupted, when, and how.
//!
//! The paper's adversarial model (Section 1.4) is an all-powerful entity that
//! each round controls a set of edges whose identity the nodes do not know.
//! Two *roles* are distinguished:
//!
//! * **eavesdropper** — passively records the traffic on controlled edges
//!   (the security experiments inspect the recorded view);
//! * **byzantine** — rewrites the traffic on controlled edges arbitrarily.
//!
//! Orthogonally, a *budget* constrains which sets may be controlled:
//! a fixed set (static adversary), at most `f` edges per round (mobile
//! adversary), or a total of `f·r` edge-rounds (round-error-rate adversary).
//! The [`crate::network::Network`] enforces the budget; strategies only express
//! *intent*.

use crate::traffic::{Payload, Traffic};
use netgraph::{EdgeId, Graph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Whether the adversary reads or rewrites the traffic it controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryRole {
    /// Record traffic on controlled edges (security experiments).
    Eavesdropper,
    /// Corrupt traffic on controlled edges (resilience experiments).
    Byzantine,
}

/// The budget constraining which edges may be controlled over time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptionBudget {
    /// No edges may ever be controlled (fault-free execution).
    None,
    /// A fixed set of edges is controlled in every round (static adversary).
    Static(Vec<EdgeId>),
    /// At most `f` (arbitrary, possibly different) edges per round (mobile adversary).
    Mobile { f: usize },
    /// A total budget of `total` edge-rounds across the whole execution
    /// (round-error-rate adversary: `total = f · r`).
    RoundErrorRate { total: usize },
}

impl CorruptionBudget {
    /// The per-round cap implied by the budget given the remaining allowance.
    pub(crate) fn round_cap(&self, spent: usize) -> usize {
        match self {
            CorruptionBudget::None => 0,
            CorruptionBudget::Static(edges) => edges.len(),
            CorruptionBudget::Mobile { f } => *f,
            CorruptionBudget::RoundErrorRate { total } => total.saturating_sub(spent),
        }
    }

    /// Whether an edge is eligible under a static budget.
    pub(crate) fn allows_edge(&self, e: EdgeId) -> bool {
        match self {
            CorruptionBudget::Static(edges) => edges.contains(&e),
            CorruptionBudget::None => false,
            _ => true,
        }
    }
}

/// How a byzantine adversary rewrites a controlled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Replace the payload with uniformly random words of the same length
    /// (length 1 if the original message was empty).
    ReplaceRandom,
    /// XOR the first word with 1 (minimal, hard-to-detect corruption).
    FlipLowBit,
    /// Drop the message entirely.
    Drop,
    /// Replace with a fixed word repeated to the original length.
    Constant(u64),
}

impl CorruptionMode {
    /// Apply the corruption to an optional payload.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        original: Option<&Payload>,
        rng: &mut R,
    ) -> Option<Payload> {
        match self {
            CorruptionMode::ReplaceRandom => {
                let len = original.map(|p| p.len().max(1)).unwrap_or(1);
                Some((0..len).map(|_| rng.gen()).collect())
            }
            CorruptionMode::FlipLowBit => {
                let mut p = original.cloned().unwrap_or_else(|| vec![0]);
                if p.is_empty() {
                    p.push(0);
                }
                p[0] ^= 1;
                Some(p)
            }
            CorruptionMode::Drop => None,
            CorruptionMode::Constant(w) => {
                let len = original.map(|p| p.len().max(1)).unwrap_or(1);
                Some(vec![*w; len])
            }
        }
    }
}

/// A strategy deciding which edges the adversary *wants* to control each round.
///
/// The network intersects the request with the configured budget, so a strategy
/// never needs to worry about exceeding `f`; asking for more than allowed just
/// means the surplus is ignored (in request order).
pub trait AdversaryStrategy: Send {
    /// Human-readable name for experiment reports.
    fn name(&self) -> String;

    /// Edges the adversary wants to control in this round.  The strategy sees
    /// the full outgoing traffic of the round (the adversary is all-powerful and
    /// rushing), but not the nodes' private randomness.
    fn choose_edges(&mut self, round: usize, graph: &Graph, traffic: &Traffic) -> Vec<EdgeId>;

    /// How controlled byzantine messages are rewritten (ignored for eavesdroppers).
    fn corruption_mode(&self) -> CorruptionMode {
        CorruptionMode::ReplaceRandom
    }
}

/// A strategy that never controls any edge (fault-free baseline).
#[derive(Debug, Default, Clone)]
pub struct NoAdversary;

impl AdversaryStrategy for NoAdversary {
    fn name(&self) -> String {
        "none".into()
    }
    fn choose_edges(&mut self, _round: usize, _graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        Vec::new()
    }
}

/// Controls the same fixed set of edges every round (the classical static adversary).
#[derive(Debug, Clone)]
pub struct FixedEdges {
    edges: Vec<EdgeId>,
    mode: CorruptionMode,
}

impl FixedEdges {
    /// Control exactly these edges every round.
    pub fn new(edges: Vec<EdgeId>) -> Self {
        FixedEdges {
            edges,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for FixedEdges {
    fn name(&self) -> String {
        format!("static({})", self.edges.len())
    }
    fn choose_edges(&mut self, _round: usize, _graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        self.edges.clone()
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Controls `f` uniformly random edges, re-drawn every round — the canonical
/// mobile adversary.
#[derive(Debug, Clone)]
pub struct RandomMobile {
    f: usize,
    rng: ChaCha8Rng,
    mode: CorruptionMode,
}

impl RandomMobile {
    /// Control `f` random edges per round, using `seed` for reproducibility.
    pub fn new(f: usize, seed: u64) -> Self {
        RandomMobile {
            f,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for RandomMobile {
    fn name(&self) -> String {
        format!("random-mobile(f={})", self.f)
    }
    fn choose_edges(&mut self, _round: usize, graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        let m = graph.edge_count();
        if m == 0 {
            return Vec::new();
        }
        let mut chosen = Vec::with_capacity(self.f);
        let mut tries = 0;
        while chosen.len() < self.f.min(m) && tries < 20 * self.f.max(1) {
            let e = self.rng.gen_range(0..m);
            if !chosen.contains(&e) {
                chosen.push(e);
            }
            tries += 1;
        }
        chosen
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Sweeps over the edge set round-robin, `f` edges at a time — guarantees that
/// *every* edge is eventually corrupted, which defeats any protocol relying on
/// some edge staying clean forever (the attack that breaks static compilers in
/// the mobile setting).
#[derive(Debug, Clone)]
pub struct SweepMobile {
    f: usize,
    cursor: usize,
    mode: CorruptionMode,
}

impl SweepMobile {
    /// Control `f` consecutive edges per round, advancing the window each round.
    pub fn new(f: usize) -> Self {
        SweepMobile {
            f,
            cursor: 0,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for SweepMobile {
    fn name(&self) -> String {
        format!("sweep-mobile(f={})", self.f)
    }
    fn choose_edges(&mut self, _round: usize, graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        let m = graph.edge_count();
        if m == 0 {
            return Vec::new();
        }
        let mut chosen = Vec::with_capacity(self.f);
        for i in 0..self.f.min(m) {
            chosen.push((self.cursor + i) % m);
        }
        self.cursor = (self.cursor + self.f) % m;
        chosen
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// Prefers the edges currently carrying the most data ("greedy heaviest"):
/// a natural attack against aggregation trees, where high-traffic edges are the
/// ones carrying combined sketches.
#[derive(Debug, Clone)]
pub struct GreedyHeaviest {
    f: usize,
    mode: CorruptionMode,
}

impl GreedyHeaviest {
    /// Control the `f` edges with the largest total payload each round.
    pub fn new(f: usize) -> Self {
        GreedyHeaviest {
            f,
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for GreedyHeaviest {
    fn name(&self) -> String {
        format!("greedy-heaviest(f={})", self.f)
    }
    fn choose_edges(&mut self, _round: usize, graph: &Graph, traffic: &Traffic) -> Vec<EdgeId> {
        let mut weight = vec![0usize; graph.edge_count()];
        for (arc, payload) in traffic.iter_present() {
            let (e, _, _) = graph.arc_endpoints(arc);
            weight[e] += payload.len();
        }
        let mut edges: Vec<EdgeId> = (0..graph.edge_count()).collect();
        edges.sort_by_key(|&e| std::cmp::Reverse(weight[e]));
        edges.truncate(self.f);
        edges
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// A bursty adversary for the round-error-rate model: quiet for `quiet` rounds,
/// then corrupts as many edges as it can for `burst` rounds, repeating.
/// Combined with a [`CorruptionBudget::RoundErrorRate`] budget this realises
/// the "invest a large budget of faults in specific rounds" behaviour of
/// Section 4.
#[derive(Debug, Clone)]
pub struct BurstAdversary {
    quiet: usize,
    burst: usize,
    per_burst_round: usize,
    rng: ChaCha8Rng,
    mode: CorruptionMode,
}

impl BurstAdversary {
    /// Quiet for `quiet` rounds, then corrupt `per_burst_round` random edges in
    /// each of the next `burst` rounds, repeating.
    pub fn new(quiet: usize, burst: usize, per_burst_round: usize, seed: u64) -> Self {
        BurstAdversary {
            quiet,
            burst,
            per_burst_round,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mode: CorruptionMode::ReplaceRandom,
        }
    }

    /// Select the corruption mode.
    pub fn with_mode(mut self, mode: CorruptionMode) -> Self {
        self.mode = mode;
        self
    }
}

impl AdversaryStrategy for BurstAdversary {
    fn name(&self) -> String {
        format!(
            "burst(quiet={},burst={},per={})",
            self.quiet, self.burst, self.per_burst_round
        )
    }
    fn choose_edges(&mut self, round: usize, graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        let period = self.quiet + self.burst;
        if period == 0 || round % period < self.quiet {
            return Vec::new();
        }
        let m = graph.edge_count();
        let mut chosen = Vec::new();
        let mut tries = 0;
        while chosen.len() < self.per_burst_round.min(m) && tries < 20 * self.per_burst_round.max(1)
        {
            let e = self.rng.gen_range(0..m);
            if !chosen.contains(&e) {
                chosen.push(e);
            }
            tries += 1;
        }
        chosen
    }
    fn corruption_mode(&self) -> CorruptionMode {
        self.mode
    }
}

/// An eavesdropping schedule that follows an explicit per-round list of edges —
/// used by the security tests to couple the adversary's view across executions
/// on different inputs.
#[derive(Debug, Clone)]
pub struct ScheduledEdges {
    schedule: Vec<Vec<EdgeId>>,
}

impl ScheduledEdges {
    /// Control exactly `schedule[i]` in round `i` (empty after the schedule ends).
    pub fn new(schedule: Vec<Vec<EdgeId>>) -> Self {
        ScheduledEdges { schedule }
    }
}

impl AdversaryStrategy for ScheduledEdges {
    fn name(&self) -> String {
        format!("scheduled({} rounds)", self.schedule.len())
    }
    fn choose_edges(&mut self, round: usize, _graph: &Graph, _traffic: &Traffic) -> Vec<EdgeId> {
        self.schedule.get(round).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators;

    fn empty_traffic(g: &Graph) -> Traffic {
        Traffic::new(g)
    }

    #[test]
    fn budgets_round_caps() {
        assert_eq!(CorruptionBudget::None.round_cap(0), 0);
        assert_eq!(CorruptionBudget::Mobile { f: 3 }.round_cap(100), 3);
        assert_eq!(CorruptionBudget::Static(vec![1, 2]).round_cap(0), 2);
        let rate = CorruptionBudget::RoundErrorRate { total: 10 };
        assert_eq!(rate.round_cap(0), 10);
        assert_eq!(rate.round_cap(7), 3);
        assert_eq!(rate.round_cap(12), 0);
    }

    #[test]
    fn corruption_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let orig = vec![5u64, 6];
        assert_eq!(CorruptionMode::Drop.apply(Some(&orig), &mut rng), None);
        assert_eq!(
            CorruptionMode::FlipLowBit.apply(Some(&orig), &mut rng),
            Some(vec![4, 6])
        );
        assert_eq!(
            CorruptionMode::Constant(9).apply(Some(&orig), &mut rng),
            Some(vec![9, 9])
        );
        let r = CorruptionMode::ReplaceRandom
            .apply(Some(&orig), &mut rng)
            .unwrap();
        assert_eq!(r.len(), 2);
        // Empty original still yields a (non-empty) fabricated message.
        assert_eq!(
            CorruptionMode::Constant(3).apply(None, &mut rng),
            Some(vec![3])
        );
    }

    #[test]
    fn random_mobile_respects_f_and_is_reproducible() {
        let g = generators::complete(8);
        let t = empty_traffic(&g);
        let mut a = RandomMobile::new(4, 99);
        let mut b = RandomMobile::new(4, 99);
        for round in 0..10 {
            let ea = a.choose_edges(round, &g, &t);
            let eb = b.choose_edges(round, &g, &t);
            assert_eq!(ea, eb);
            assert!(ea.len() <= 4);
            let unique: std::collections::HashSet<_> = ea.iter().collect();
            assert_eq!(unique.len(), ea.len());
        }
    }

    #[test]
    fn sweep_covers_all_edges() {
        let g = generators::cycle(7);
        let t = empty_traffic(&g);
        let mut s = SweepMobile::new(2);
        let mut covered = std::collections::HashSet::new();
        for round in 0..10 {
            for e in s.choose_edges(round, &g, &t) {
                covered.insert(e);
            }
        }
        assert_eq!(covered.len(), g.edge_count());
    }

    #[test]
    fn greedy_heaviest_targets_busy_edges() {
        let g = generators::path(4);
        let mut t = Traffic::new(&g);
        t.send(&g, 1, 2, vec![1, 2, 3, 4, 5]);
        t.send(&g, 0, 1, vec![1]);
        let mut adv = GreedyHeaviest::new(1);
        let chosen = adv.choose_edges(0, &g, &t);
        assert_eq!(chosen, vec![g.edge_between(1, 2).unwrap()]);
    }

    #[test]
    fn burst_adversary_is_quiet_then_bursts() {
        let g = generators::complete(5);
        let t = empty_traffic(&g);
        let mut adv = BurstAdversary::new(3, 2, 4, 1);
        assert!(adv.choose_edges(0, &g, &t).is_empty());
        assert!(adv.choose_edges(2, &g, &t).is_empty());
        assert!(!adv.choose_edges(3, &g, &t).is_empty());
        assert!(!adv.choose_edges(4, &g, &t).is_empty());
        assert!(adv.choose_edges(5, &g, &t).is_empty());
    }

    #[test]
    fn scheduled_edges_follow_schedule() {
        let g = generators::cycle(4);
        let t = empty_traffic(&g);
        let mut adv = ScheduledEdges::new(vec![vec![0], vec![], vec![1, 2]]);
        assert_eq!(adv.choose_edges(0, &g, &t), vec![0]);
        assert!(adv.choose_edges(1, &g, &t).is_empty());
        assert_eq!(adv.choose_edges(2, &g, &t), vec![1, 2]);
        assert!(adv.choose_edges(3, &g, &t).is_empty());
    }

    #[test]
    fn static_budget_filters_edges() {
        let b = CorruptionBudget::Static(vec![3, 5]);
        assert!(b.allows_edge(3));
        assert!(!b.allows_edge(4));
        assert!(CorruptionBudget::Mobile { f: 1 }.allows_edge(4));
        assert!(!CorruptionBudget::None.allows_edge(0));
    }
}
