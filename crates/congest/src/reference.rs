//! The PR-2-era round engine, retained verbatim as a *reference
//! implementation* for two purposes:
//!
//! 1. **Parity** — regression tests drive the same scenario through this
//!    engine and through [`crate::network::Network`] and require byte-identical
//!    outputs, metrics, corruption history and eavesdropper views, proving the
//!    flat-buffer rewrite changed the cost of a round but not its semantics.
//! 2. **Benchmarking** — `benches/experiments.rs` (E16a) measures the same
//!    round workload on both engines; the reported speedup is the
//!    before/after comparison against the seed representation (one
//!    `Option<Vec<u64>>` heap allocation per arc per round).
//!
//! Nothing here is used by the production path; prefer
//! [`crate::network::Network`] everywhere else.

use crate::adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget, EdgeSet};
use crate::metrics::Metrics;
use crate::network::{ViewEntry, ViewLog};
use crate::traffic::{Payload, Traffic};
use netgraph::{ArcId, EdgeId, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The seed representation of one round's traffic: one owned, optional
/// payload per directed arc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyTraffic {
    arcs: Vec<Option<Payload>>,
}

impl LegacyTraffic {
    /// Empty traffic for a graph.
    pub fn new(g: &Graph) -> Self {
        LegacyTraffic {
            arcs: vec![None; g.arc_count()],
        }
    }

    /// Set the message sent from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` is not an edge of the graph.
    pub fn send(&mut self, g: &Graph, from: NodeId, to: NodeId, payload: Payload) {
        let arc = g
            .arc_between(from, to)
            .unwrap_or_else(|| panic!("({from},{to}) is not an edge"));
        self.arcs[arc] = Some(payload);
    }

    /// The message on a specific arc, if any.
    pub fn get_arc(&self, arc: ArcId) -> Option<&Payload> {
        self.arcs.get(arc).and_then(|o| o.as_ref())
    }

    /// Convert to the flat representation (for delivering to an algorithm).
    pub fn to_traffic(&self, g: &Graph) -> Traffic {
        let mut t = Traffic::new(g);
        for (arc, payload) in self.arcs.iter().enumerate() {
            if let Some(p) = payload {
                t.set_arc(arc, Some(p));
            }
        }
        t
    }

    /// Convert from the flat representation (for feeding an algorithm's round
    /// into this engine).
    pub fn from_traffic(g: &Graph, t: &Traffic) -> Self {
        let mut out = LegacyTraffic::new(g);
        for (arc, payload) in t.iter_present() {
            out.arcs[arc] = Some(payload.to_vec());
        }
        out
    }
}

/// The seed round engine: identical decision sequence to
/// [`crate::network::Network`], seed-era data structures (per-round `Vec`s,
/// per-payload clones, allocating corruption).
pub struct ReferenceNetwork {
    graph: Graph,
    role: AdversaryRole,
    strategy: Box<dyn AdversaryStrategy>,
    budget: CorruptionBudget,
    /// Metrics accumulated exactly as the production engine accumulates them.
    pub metrics: Metrics,
    /// The eavesdropper's view.
    pub view_log: ViewLog,
    /// Per-round controlled edges, in the seed's nested representation.
    pub corruption_history: Vec<Vec<EdgeId>>,
    budget_spent: usize,
    bandwidth_words: usize,
    corruption_rng: ChaCha8Rng,
    rounds: usize,
    /// Recycled request set for [`AdversaryStrategy::mark_edges`] (the
    /// reference engine predates [`EdgeSet`] but uses the non-allocating
    /// strategy entry point like the production engine does).
    wanted: EdgeSet,
}

impl ReferenceNetwork {
    /// A reference network with the given adversary configuration (mirrors
    /// [`crate::network::Network::new`], including the RNG derivation).
    pub fn new(
        graph: Graph,
        role: AdversaryRole,
        strategy: Box<dyn AdversaryStrategy>,
        budget: CorruptionBudget,
        seed: u64,
    ) -> Self {
        let metrics = Metrics::new(&graph);
        ReferenceNetwork {
            graph,
            role,
            strategy,
            budget,
            metrics,
            view_log: ViewLog::default(),
            corruption_history: Vec::new(),
            budget_spent: 0,
            bandwidth_words: 2,
            corruption_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAD5E_55A7),
            rounds: 0,
            wanted: EdgeSet::new(),
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of rounds executed.
    pub fn round(&self) -> usize {
        self.rounds
    }

    /// The seed's `Network::exchange`, verbatim: allocate-and-clone on every
    /// controlled arc.
    pub fn exchange(&mut self, outgoing: LegacyTraffic) -> LegacyTraffic {
        let round = self.rounds;
        self.rounds += 1;
        // Metrics, recorded identically to the production engine.
        let flat = outgoing.to_traffic(&self.graph);
        self.metrics.record_exchange(&flat, self.bandwidth_words);

        self.wanted.reset(self.graph.edge_count());
        self.strategy
            .mark_edges(round, &self.graph, &flat, &mut self.wanted);
        let cap = self.budget.round_cap(self.budget_spent);
        let mut controlled: Vec<EdgeId> = Vec::new();
        for &e in self.wanted.as_slice() {
            if controlled.len() >= cap {
                break;
            }
            if e < self.graph.edge_count() && self.budget.allows_edge(e) && !controlled.contains(&e)
            {
                controlled.push(e);
            }
        }
        if matches!(self.budget, CorruptionBudget::RoundErrorRate { .. }) {
            self.budget_spent += controlled.len();
        }

        let mut delivered = outgoing;
        let mut altered = 0usize;
        for &e in &controlled {
            let (fwd_arc, bwd_arc) = Graph::arcs_of(e);
            match self.role {
                AdversaryRole::Eavesdropper => {
                    self.view_log.entries.push(ViewEntry {
                        round,
                        edge: e,
                        forward: delivered.get_arc(fwd_arc).cloned(),
                        backward: delivered.get_arc(bwd_arc).cloned(),
                    });
                }
                AdversaryRole::Byzantine => {
                    let mode = self.strategy.corruption_mode();
                    for arc in [fwd_arc, bwd_arc] {
                        let original = delivered.get_arc(arc).cloned();
                        let replacement = mode.apply(original.as_ref(), &mut self.corruption_rng);
                        if replacement != original {
                            altered += 1;
                        }
                        delivered.arcs[arc] = replacement;
                    }
                }
            }
        }
        self.metrics.record_corruption(&controlled, altered);
        self.corruption_history.push(controlled);
        delivered
    }
}

/// Run an algorithm uncompiled through the reference engine (the seed's
/// `run_on_network`): per-round conversion to the legacy representation, the
/// legacy exchange, and conversion back for delivery.
pub fn run_on_reference_network<A: crate::algorithm::CongestAlgorithm + ?Sized>(
    alg: &mut A,
    net: &mut ReferenceNetwork,
) -> Vec<crate::traffic::Output> {
    let g = net.graph().clone();
    for round in 0..alg.rounds() {
        let outgoing = LegacyTraffic::from_traffic(&g, &alg.send(round));
        let delivered = net.exchange(outgoing);
        alg.receive(round, &delivered.to_traffic(&g));
    }
    alg.outputs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::RandomMobile;
    use crate::network::Network;

    /// The parity contract: identical decision sequences on both engines.
    #[test]
    fn reference_and_flat_engine_agree_round_by_round() {
        let g = netgraph::generators::complete(8);
        let make = |role| {
            (
                Network::new(
                    g.clone(),
                    role,
                    Box::new(RandomMobile::new(2, 9)),
                    CorruptionBudget::Mobile { f: 2 },
                    9,
                ),
                ReferenceNetwork::new(
                    g.clone(),
                    role,
                    Box::new(RandomMobile::new(2, 9)),
                    CorruptionBudget::Mobile { f: 2 },
                    9,
                ),
            )
        };
        for role in [AdversaryRole::Byzantine, AdversaryRole::Eavesdropper] {
            let (mut flat_net, mut ref_net) = make(role);
            for round in 0..12 {
                let mut flat = Traffic::new(&g);
                let mut legacy = LegacyTraffic::new(&g);
                for e in g.edges() {
                    let w = (round as u64) << 8 | e.u as u64;
                    flat.send(&g, e.u, e.v, [w]);
                    legacy.send(&g, e.u, e.v, vec![w]);
                }
                flat_net.exchange_in_place(&mut flat);
                let delivered = ref_net.exchange(legacy);
                assert_eq!(
                    flat,
                    delivered.to_traffic(&g),
                    "round {round} delivered traffic diverged"
                );
            }
            assert_eq!(flat_net.metrics(), &ref_net.metrics);
            assert_eq!(flat_net.view_log(), &ref_net.view_log);
            let flat_history: Vec<Vec<EdgeId>> = flat_net
                .corruption_history()
                .iter()
                .map(|r| r.to_vec())
                .collect();
            assert_eq!(flat_history, ref_net.corruption_history);
        }
    }
}
