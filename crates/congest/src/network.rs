//! The round-synchronous network with adversary interposition.
//!
//! A [`Network`] owns the communication graph, an adversary (role + strategy +
//! budget) and the execution metrics.  Protocols drive it through
//! [`Network::exchange`] (or the buffer-reusing
//! [`Network::exchange_in_place`]): they hand over the round's outgoing
//! [`Traffic`], the adversary picks the edges it controls (within its budget),
//! either records or rewrites the traffic on those edges, and the resulting
//! traffic is what the receiving nodes observe.
//!
//! The network also keeps the **corruption history** (which edges were
//! controlled in which round) and, for eavesdroppers, the **view log** (what
//! the adversary saw).  The first feeds the interactive-coding oracle of
//! Theorem 3.2; the second feeds the perfect-security experiments.
//!
//! # The zero-allocation round engine
//!
//! `exchange_in_place` is the hot path: the adversary marks its wanted edges
//! into a recycled [`EdgeSet`], the budget clamp writes into a recycled
//! `controlled` vector, byzantine rewrites go through a recycled scratch
//! payload buffer straight into the flat [`Traffic`] arena, and the history
//! appends to a flattened [`CorruptionHistory`].  After warm-up, a round
//! executes without touching the allocator (covered by a buffer-reuse
//! regression test).

use crate::adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget, EdgeSet, NoAdversary};
use crate::metrics::Metrics;
use crate::traffic::{Payload, Traffic};
use netgraph::{EdgeId, Graph};
use obs::{EventKind, Phase, Tracer};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One observation made by an eavesdropper: both directions of one edge in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewEntry {
    /// The round in which the observation was made.
    pub round: usize,
    /// The observed edge.
    pub edge: EdgeId,
    /// Payload flowing from the edge's smaller endpoint to the larger one.
    pub forward: Option<Payload>,
    /// Payload flowing from the larger endpoint to the smaller one.
    pub backward: Option<Payload>,
}

/// Everything the eavesdropper saw during an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewLog {
    /// Observations in chronological order.
    pub entries: Vec<ViewEntry>,
}

impl ViewLog {
    /// A canonical flattening of the view, suitable for comparing the
    /// distribution of views across executions (perfect security states the
    /// distributions must be identical for any two inputs).
    pub fn canonical(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.push(e.round as u64);
            out.push(e.edge as u64);
            for side in [&e.forward, &e.backward] {
                match side {
                    Some(p) => {
                        out.push(1 + p.len() as u64);
                        out.extend_from_slice(p);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which edges the adversary controlled in each executed round, stored
/// flattened (one shared edge vector plus per-round bounds) so recording a
/// round is an amortised append instead of a fresh `Vec` per round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorruptionHistory {
    edges: Vec<EdgeId>,
    /// `bounds[r]` = end offset of round `r` in `edges`.
    bounds: Vec<usize>,
}

impl CorruptionHistory {
    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether no round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The edges controlled in round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn round(&self, r: usize) -> &[EdgeId] {
        let start = if r == 0 { 0 } else { self.bounds[r - 1] };
        &self.edges[start..self.bounds[r]]
    }

    /// The most recent round's controlled edges.
    pub fn last(&self) -> Option<&[EdgeId]> {
        (!self.bounds.is_empty()).then(|| self.round(self.bounds.len() - 1))
    }

    /// Iterate the controlled-edge list of every round in order.
    pub fn iter(&self) -> impl Iterator<Item = &[EdgeId]> + '_ {
        (0..self.len()).map(|r| self.round(r))
    }

    /// Total number of controlled edge-rounds.
    pub fn total_edge_rounds(&self) -> usize {
        self.edges.len()
    }

    fn push_round(&mut self, edges: &[EdgeId]) {
        self.edges.extend_from_slice(edges);
        self.bounds.push(self.edges.len());
    }
}

impl std::ops::Index<usize> for CorruptionHistory {
    type Output = [EdgeId];
    fn index(&self, r: usize) -> &[EdgeId] {
        self.round(r)
    }
}

impl<'a> IntoIterator for &'a CorruptionHistory {
    type Item = &'a [EdgeId];
    type IntoIter = Box<dyn Iterator<Item = &'a [EdgeId]> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Recycled per-round scratch space of the engine (see the module docs).
#[derive(Debug, Default)]
struct RoundBuffers {
    /// Edges the strategy marked this round.
    wanted: EdgeSet,
    /// The budget-clamped controlled set, in request order.
    controlled: Vec<EdgeId>,
    /// Replacement-payload scratch for in-place corruption.
    scratch: Vec<u64>,
}

/// The round-synchronous network simulator.
pub struct Network {
    graph: Graph,
    role: AdversaryRole,
    strategy: Box<dyn AdversaryStrategy>,
    budget: CorruptionBudget,
    metrics: Metrics,
    view_log: ViewLog,
    corruption_history: CorruptionHistory,
    budget_spent: usize,
    bandwidth_words: usize,
    corruption_rng: ChaCha8Rng,
    run_seed: u64,
    buffers: RoundBuffers,
    tracer: Tracer,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("role", &self.role)
            .field("strategy", &self.strategy.name())
            .field("budget", &self.budget)
            .field("rounds", &self.metrics.rounds)
            .finish()
    }
}

impl Network {
    /// A fault-free network over `graph`.
    pub fn fault_free(graph: Graph) -> Self {
        Network::new(
            graph,
            AdversaryRole::Byzantine,
            Box::new(NoAdversary),
            CorruptionBudget::None,
            0,
        )
    }

    /// A network with the given adversary configuration.
    ///
    /// `seed` drives the randomness the adversary uses when fabricating
    /// corrupted payloads (the nodes' randomness is separate and never exposed
    /// to the adversary).
    pub fn new(
        graph: Graph,
        role: AdversaryRole,
        strategy: Box<dyn AdversaryStrategy>,
        budget: CorruptionBudget,
        seed: u64,
    ) -> Self {
        let metrics = Metrics::new(&graph);
        Network {
            graph,
            role,
            strategy,
            budget,
            metrics,
            view_log: ViewLog::default(),
            corruption_history: CorruptionHistory::default(),
            budget_spent: 0,
            bandwidth_words: 2,
            corruption_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAD5E_55A7),
            run_seed: seed,
            buffers: RoundBuffers::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Install a tracer (replacing the default disabled one).  All subsequent
    /// rounds emit `RoundExchange` spans and corruption point events into it.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The network's tracer (disabled by default — every call on it is a
    /// single-branch no-op).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Remove the tracer for harvesting, leaving a disabled one behind.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Split borrow: the graph plus the tracer, for instrumented code that
    /// needs to read the topology while emitting events.
    pub fn graph_and_tracer(&mut self) -> (&Graph, &mut Tracer) {
        (&self.graph, &mut self.tracer)
    }

    /// The seed this network was constructed with.  Deterministic executors
    /// (the async runtime's latency/jitter hashing) derive their per-message
    /// randomness from it without touching [`Network::public_coin`]'s RNG —
    /// drawing from that stream would perturb the adversary's corruption
    /// randomness and break lockstep/async parity.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The adversary's role (eavesdropper or byzantine).
    pub fn role(&self) -> AdversaryRole {
        self.role
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of communication rounds executed so far.
    pub fn round(&self) -> usize {
        self.metrics.rounds
    }

    /// The eavesdropper's view (empty unless the role is `Eavesdropper`).
    pub fn view_log(&self) -> &ViewLog {
        &self.view_log
    }

    /// Which edges were controlled in each executed round.
    pub fn corruption_history(&self) -> &CorruptionHistory {
        &self.corruption_history
    }

    /// The adversary strategy's display name.
    pub fn adversary_name(&self) -> String {
        self.strategy.name()
    }

    /// Change the number of words per bandwidth-normalised round (default 2).
    pub fn set_bandwidth_words(&mut self, words: usize) {
        self.bandwidth_words = words.max(1);
    }

    /// Execute one communication round: the adversary interposes on `outgoing`
    /// and the returned traffic is what receivers observe.
    ///
    /// Thin by-value wrapper over [`Network::exchange_in_place`] — the buffer
    /// moves in and back out, so no copy is made either way.
    pub fn exchange(&mut self, outgoing: Traffic) -> Traffic {
        let mut traffic = outgoing;
        self.exchange_in_place(&mut traffic);
        traffic
    }

    /// Execute one communication round in place: `traffic` enters as the
    /// round's outgoing messages and leaves as what the receivers observe.
    /// This is the allocation-free engine path — all per-round scratch lives
    /// in recycled buffers owned by the network.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` has fewer arc slots than the graph (build it with
    /// [`Traffic::new`] or size it with [`Traffic::begin_round`]).
    pub fn exchange_in_place(&mut self, traffic: &mut Traffic) {
        assert!(
            traffic.arc_slots() >= self.graph.arc_count(),
            "traffic has {} arc slots but the graph has {} arcs",
            traffic.arc_slots(),
            self.graph.arc_count()
        );
        let round = self.metrics.rounds;
        self.tracer.set_time(round as u64);
        self.tracer.span_open(Phase::RoundExchange);
        self.metrics.record_exchange(traffic, self.bandwidth_words);

        // 1. Let the strategy mark edges, then clamp to the budget.
        self.buffers.wanted.reset(self.graph.edge_count());
        self.strategy
            .mark_edges(round, &self.graph, traffic, &mut self.buffers.wanted);
        let cap = self.budget.round_cap(self.budget_spent);
        let RoundBuffers {
            wanted,
            controlled,
            scratch,
        } = &mut self.buffers;
        controlled.clear();
        for e in wanted.iter() {
            if controlled.len() >= cap {
                break;
            }
            if e < self.graph.edge_count() && self.budget.allows_edge(e) {
                controlled.push(e);
            }
        }
        if matches!(self.budget, CorruptionBudget::RoundErrorRate { .. }) {
            self.budget_spent += controlled.len();
        }

        // 2. Apply the adversary's role on the controlled edges, in place.
        let mut altered = 0usize;
        let mode = self.strategy.corruption_mode();
        for &e in controlled.iter() {
            let (fwd_arc, bwd_arc) = Graph::arcs_of(e);
            self.tracer.point(EventKind::CorruptionApplied { edge: e });
            match self.role {
                AdversaryRole::Eavesdropper => {
                    self.view_log.entries.push(ViewEntry {
                        round,
                        edge: e,
                        forward: traffic.get_arc(fwd_arc).map(<[u64]>::to_vec),
                        backward: traffic.get_arc(bwd_arc).map(<[u64]>::to_vec),
                    });
                }
                AdversaryRole::Byzantine => {
                    for arc in [fwd_arc, bwd_arc] {
                        let present = mode.apply_into(
                            traffic.get_arc(arc),
                            &mut self.corruption_rng,
                            scratch,
                        );
                        let changed = match (present, traffic.get_arc(arc)) {
                            (true, Some(original)) => scratch.as_slice() != original,
                            (false, None) => false,
                            _ => true,
                        };
                        if changed {
                            altered += 1;
                        }
                        traffic.set_arc(arc, present.then_some(scratch.as_slice()));
                    }
                }
            }
        }
        self.metrics.record_corruption(controlled, altered);
        self.corruption_history.push_round(controlled);
        self.tracer.span_close(Phase::RoundExchange);
    }

    /// Run `count` empty rounds (used to model waiting / padding rounds; the
    /// adversary still gets to act, which matters for budget accounting).
    pub fn idle_rounds(&mut self, count: usize) {
        let mut t = Traffic::new(&self.graph);
        for _ in 0..count {
            t.begin_round(&self.graph);
            self.exchange_in_place(&mut t);
        }
    }

    /// Deterministic per-node private randomness stream: node `v`'s RNG derived
    /// from `run_seed`.  The adversary has no access to these streams.
    pub fn node_rng(run_seed: u64, node: usize) -> ChaCha8Rng {
        let mixed = run_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .rotate_left(17);
        ChaCha8Rng::seed_from_u64(mixed)
    }

    /// Convenience: a fresh uniformly random word from the network-owned
    /// "public coin" (usable where the paper allows shared public randomness
    /// that the adversary may know).
    pub fn public_coin(&mut self) -> u64 {
        self.corruption_rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CorruptionMode, FixedEdges, RandomMobile};
    use netgraph::generators;

    fn full_traffic(g: &Graph, value: u64) -> Traffic {
        let mut t = Traffic::new(g);
        for e in g.edges() {
            t.send(g, e.u, e.v, vec![value]);
            t.send(g, e.v, e.u, vec![value + 1]);
        }
        t
    }

    #[test]
    fn fault_free_delivers_verbatim() {
        let g = generators::cycle(5);
        let mut net = Network::fault_free(g.clone());
        let t = full_traffic(&g, 3);
        let out = net.exchange(t.clone());
        assert!(out.agrees_with(&t));
        assert_eq!(net.round(), 1);
        assert_eq!(net.metrics().messages, 10);
        assert!(net.corruption_history()[0].is_empty());
    }

    #[test]
    fn byzantine_static_corrupts_only_fixed_edges() {
        let g = generators::cycle(5);
        let target = g.edge_between(0, 1).unwrap();
        let strategy = FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(77));
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Static(vec![target]),
            0,
        );
        let t = full_traffic(&g, 3);
        let out = net.exchange(t.clone());
        assert_eq!(out.get(&g, 0, 1), Some(&[77u64][..]));
        assert_eq!(out.get(&g, 1, 0), Some(&[77u64][..]));
        // Every other edge is untouched.
        for e in g.edges() {
            if g.edge_between(e.u, e.v).unwrap() != target {
                assert_eq!(out.get(&g, e.u, e.v), t.get(&g, e.u, e.v));
            }
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 1);
        assert_eq!(net.metrics().corrupted_messages, 2);
    }

    #[test]
    fn mobile_budget_clamps_requests() {
        let g = generators::complete(6);
        // Strategy wants 10 edges, budget allows only 2.
        let strategy = RandomMobile::new(10, 7);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Mobile { f: 2 },
            1,
        );
        for _ in 0..5 {
            let _ = net.exchange(full_traffic(&g, 1));
        }
        for round_edges in net.corruption_history() {
            assert!(round_edges.len() <= 2);
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 10);
        assert_eq!(net.corruption_history().total_edge_rounds(), 10);
    }

    #[test]
    fn round_error_rate_budget_is_exhausted() {
        let g = generators::complete(5);
        let strategy = RandomMobile::new(5, 3);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::RoundErrorRate { total: 7 },
            2,
        );
        for _ in 0..10 {
            let _ = net.exchange(full_traffic(&g, 1));
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 7);
        // Later rounds must be clean.
        assert!(net.corruption_history()[9].is_empty() || net.metrics().corrupted_edge_rounds == 7);
    }

    #[test]
    fn eavesdropper_records_but_does_not_modify() {
        let g = generators::path(3);
        let e01 = g.edge_between(0, 1).unwrap();
        let strategy = FixedEdges::new(vec![e01]);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(strategy),
            CorruptionBudget::Static(vec![e01]),
            0,
        );
        let t = full_traffic(&g, 9);
        let out = net.exchange(t.clone());
        assert!(out.agrees_with(&t), "eavesdropper must not alter traffic");
        assert_eq!(net.view_log().len(), 1);
        let entry = &net.view_log().entries[0];
        assert_eq!(entry.edge, e01);
        assert_eq!(entry.forward, Some(vec![9]));
        assert_eq!(entry.backward, Some(vec![10]));
        assert!(!net.view_log().canonical().is_empty());
    }

    #[test]
    fn idle_rounds_advance_the_clock() {
        let g = generators::path(2);
        let mut net = Network::fault_free(g);
        net.idle_rounds(4);
        assert_eq!(net.round(), 4);
    }

    #[test]
    fn node_rngs_are_distinct_and_deterministic() {
        let mut a = Network::node_rng(7, 0);
        let mut a2 = Network::node_rng(7, 0);
        let mut b = Network::node_rng(7, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn corruption_history_flattening_round_trips() {
        let mut h = CorruptionHistory::default();
        h.push_round(&[3, 1]);
        h.push_round(&[]);
        h.push_round(&[7]);
        assert_eq!(h.len(), 3);
        assert_eq!(&h[0], &[3, 1][..]);
        assert!(h[1].is_empty());
        assert_eq!(h.last(), Some(&[7usize][..]));
        assert_eq!(h.total_edge_rounds(), 3);
        let rounds: Vec<&[EdgeId]> = h.iter().collect();
        assert_eq!(rounds.len(), 3);
    }

    #[test]
    fn steady_state_rounds_do_not_grow_the_buffers() {
        // The zero-allocation claim of the round engine: after warm-up, the
        // traffic arena, the adversary's scratch and the budget-clamp buffers
        // all stop growing — per-round allocation count is constant (zero) in
        // the round count.
        let g = generators::complete(10);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(3, 5).with_mode(CorruptionMode::ReplaceRandom)),
            CorruptionBudget::Mobile { f: 3 },
            5,
        );
        let mut t = Traffic::new(&g);
        let run_round = |net: &mut Network, t: &mut Traffic| {
            t.begin_round(&g);
            for e in g.edges() {
                t.send(&g, e.u, e.v, [e.u as u64, e.v as u64]);
                t.send(&g, e.v, e.u, [e.v as u64, e.u as u64]);
            }
            net.exchange_in_place(t);
        };
        for _ in 0..20 {
            run_round(&mut net, &mut t);
        }
        let traffic_cap = t.word_capacity();
        let scratch_cap = net.buffers.scratch.capacity();
        let controlled_cap = net.buffers.controlled.capacity();
        for _ in 0..500 {
            run_round(&mut net, &mut t);
        }
        assert_eq!(t.word_capacity(), traffic_cap, "traffic arena regrew");
        assert_eq!(
            net.buffers.scratch.capacity(),
            scratch_cap,
            "corruption scratch regrew"
        );
        assert_eq!(
            net.buffers.controlled.capacity(),
            controlled_cap,
            "controlled buffer regrew"
        );
    }
}
