//! The round-synchronous network with adversary interposition.
//!
//! A [`Network`] owns the communication graph, an adversary (role + strategy +
//! budget) and the execution metrics.  Protocols drive it through
//! [`Network::exchange`]: they hand over the round's outgoing [`Traffic`], the
//! adversary picks the edges it controls (within its budget), either records or
//! rewrites the traffic on those edges, and the resulting traffic is what the
//! receiving nodes observe.
//!
//! The network also keeps the **corruption history** (which edges were
//! controlled in which round) and, for eavesdroppers, the **view log** (what
//! the adversary saw).  The first feeds the interactive-coding oracle of
//! Theorem 3.2; the second feeds the perfect-security experiments.

use crate::adversary::{AdversaryRole, AdversaryStrategy, CorruptionBudget, NoAdversary};
use crate::metrics::Metrics;
use crate::traffic::{Payload, Traffic};
use netgraph::{EdgeId, Graph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One observation made by an eavesdropper: both directions of one edge in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewEntry {
    /// The round in which the observation was made.
    pub round: usize,
    /// The observed edge.
    pub edge: EdgeId,
    /// Payload flowing from the edge's smaller endpoint to the larger one.
    pub forward: Option<Payload>,
    /// Payload flowing from the larger endpoint to the smaller one.
    pub backward: Option<Payload>,
}

/// Everything the eavesdropper saw during an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewLog {
    /// Observations in chronological order.
    pub entries: Vec<ViewEntry>,
}

impl ViewLog {
    /// A canonical flattening of the view, suitable for comparing the
    /// distribution of views across executions (perfect security states the
    /// distributions must be identical for any two inputs).
    pub fn canonical(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.push(e.round as u64);
            out.push(e.edge as u64);
            for side in [&e.forward, &e.backward] {
                match side {
                    Some(p) => {
                        out.push(1 + p.len() as u64);
                        out.extend_from_slice(p);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The round-synchronous network simulator.
pub struct Network {
    graph: Graph,
    role: AdversaryRole,
    strategy: Box<dyn AdversaryStrategy>,
    budget: CorruptionBudget,
    metrics: Metrics,
    view_log: ViewLog,
    corruption_history: Vec<Vec<EdgeId>>,
    budget_spent: usize,
    bandwidth_words: usize,
    corruption_rng: ChaCha8Rng,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("role", &self.role)
            .field("strategy", &self.strategy.name())
            .field("budget", &self.budget)
            .field("rounds", &self.metrics.rounds)
            .finish()
    }
}

impl Network {
    /// A fault-free network over `graph`.
    pub fn fault_free(graph: Graph) -> Self {
        Network::new(
            graph,
            AdversaryRole::Byzantine,
            Box::new(NoAdversary),
            CorruptionBudget::None,
            0,
        )
    }

    /// A network with the given adversary configuration.
    ///
    /// `seed` drives the randomness the adversary uses when fabricating
    /// corrupted payloads (the nodes' randomness is separate and never exposed
    /// to the adversary).
    pub fn new(
        graph: Graph,
        role: AdversaryRole,
        strategy: Box<dyn AdversaryStrategy>,
        budget: CorruptionBudget,
        seed: u64,
    ) -> Self {
        let metrics = Metrics::new(&graph);
        Network {
            graph,
            role,
            strategy,
            budget,
            metrics,
            view_log: ViewLog::default(),
            corruption_history: Vec::new(),
            budget_spent: 0,
            bandwidth_words: 2,
            corruption_rng: ChaCha8Rng::seed_from_u64(seed ^ 0xAD5E_55A7),
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The adversary's role (eavesdropper or byzantine).
    pub fn role(&self) -> AdversaryRole {
        self.role
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of communication rounds executed so far.
    pub fn round(&self) -> usize {
        self.metrics.rounds
    }

    /// The eavesdropper's view (empty unless the role is `Eavesdropper`).
    pub fn view_log(&self) -> &ViewLog {
        &self.view_log
    }

    /// Which edges were controlled in each executed round.
    pub fn corruption_history(&self) -> &[Vec<EdgeId>] {
        &self.corruption_history
    }

    /// The adversary strategy's display name.
    pub fn adversary_name(&self) -> String {
        self.strategy.name()
    }

    /// Change the number of words per bandwidth-normalised round (default 2).
    pub fn set_bandwidth_words(&mut self, words: usize) {
        self.bandwidth_words = words.max(1);
    }

    /// Execute one communication round: the adversary interposes on `outgoing`
    /// and the returned traffic is what receivers observe.
    pub fn exchange(&mut self, outgoing: Traffic) -> Traffic {
        let round = self.metrics.rounds;
        self.metrics
            .record_exchange(&self.graph, &outgoing, self.bandwidth_words);

        // 1. Let the strategy pick edges, then clamp to the budget.
        let wanted = self.strategy.choose_edges(round, &self.graph, &outgoing);
        let cap = self.budget.round_cap(self.budget_spent);
        let mut controlled: Vec<EdgeId> = Vec::new();
        for e in wanted {
            if controlled.len() >= cap {
                break;
            }
            if e < self.graph.edge_count() && self.budget.allows_edge(e) && !controlled.contains(&e)
            {
                controlled.push(e);
            }
        }
        if matches!(self.budget, CorruptionBudget::RoundErrorRate { .. }) {
            self.budget_spent += controlled.len();
        }

        // 2. Apply the adversary's role on the controlled edges.
        let mut delivered = outgoing;
        let mut altered = 0usize;
        for &e in &controlled {
            let edge = self.graph.edge(e);
            let fwd_arc = self.graph.arc(e, edge.u, edge.v);
            let bwd_arc = self.graph.arc(e, edge.v, edge.u);
            match self.role {
                AdversaryRole::Eavesdropper => {
                    self.view_log.entries.push(ViewEntry {
                        round,
                        edge: e,
                        forward: delivered.get_arc(fwd_arc).cloned(),
                        backward: delivered.get_arc(bwd_arc).cloned(),
                    });
                }
                AdversaryRole::Byzantine => {
                    let mode = self.strategy.corruption_mode();
                    for arc in [fwd_arc, bwd_arc] {
                        let original = delivered.get_arc(arc).cloned();
                        let replacement = mode.apply(original.as_ref(), &mut self.corruption_rng);
                        if replacement != original {
                            altered += 1;
                        }
                        delivered.set_arc(arc, replacement);
                    }
                }
            }
        }
        self.metrics.record_corruption(&controlled, altered);
        self.corruption_history.push(controlled);
        delivered
    }

    /// Run `count` empty rounds (used to model waiting / padding rounds; the
    /// adversary still gets to act, which matters for budget accounting).
    pub fn idle_rounds(&mut self, count: usize) {
        for _ in 0..count {
            let t = Traffic::new(&self.graph);
            let _ = self.exchange(t);
        }
    }

    /// Deterministic per-node private randomness stream: node `v`'s RNG derived
    /// from `run_seed`.  The adversary has no access to these streams.
    pub fn node_rng(run_seed: u64, node: usize) -> ChaCha8Rng {
        let mixed = run_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .rotate_left(17);
        ChaCha8Rng::seed_from_u64(mixed)
    }

    /// Convenience: a fresh uniformly random word from the network-owned
    /// "public coin" (usable where the paper allows shared public randomness
    /// that the adversary may know).
    pub fn public_coin(&mut self) -> u64 {
        self.corruption_rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CorruptionMode, FixedEdges, RandomMobile};
    use netgraph::generators;

    fn full_traffic(g: &Graph, value: u64) -> Traffic {
        let mut t = Traffic::new(g);
        for e in g.edges() {
            t.send(g, e.u, e.v, vec![value]);
            t.send(g, e.v, e.u, vec![value + 1]);
        }
        t
    }

    #[test]
    fn fault_free_delivers_verbatim() {
        let g = generators::cycle(5);
        let mut net = Network::fault_free(g.clone());
        let t = full_traffic(&g, 3);
        let out = net.exchange(t.clone());
        assert!(out.agrees_with(&t));
        assert_eq!(net.round(), 1);
        assert_eq!(net.metrics().messages, 10);
        assert!(net.corruption_history()[0].is_empty());
    }

    #[test]
    fn byzantine_static_corrupts_only_fixed_edges() {
        let g = generators::cycle(5);
        let target = g.edge_between(0, 1).unwrap();
        let strategy = FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(77));
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Static(vec![target]),
            0,
        );
        let t = full_traffic(&g, 3);
        let out = net.exchange(t.clone());
        assert_eq!(out.get(&g, 0, 1), Some(&vec![77]));
        assert_eq!(out.get(&g, 1, 0), Some(&vec![77]));
        // Every other edge is untouched.
        for e in g.edges() {
            if g.edge_between(e.u, e.v).unwrap() != target {
                assert_eq!(out.get(&g, e.u, e.v), t.get(&g, e.u, e.v));
            }
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 1);
        assert_eq!(net.metrics().corrupted_messages, 2);
    }

    #[test]
    fn mobile_budget_clamps_requests() {
        let g = generators::complete(6);
        // Strategy wants 10 edges, budget allows only 2.
        let strategy = RandomMobile::new(10, 7);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Mobile { f: 2 },
            1,
        );
        for _ in 0..5 {
            let _ = net.exchange(full_traffic(&g, 1));
        }
        for round_edges in net.corruption_history() {
            assert!(round_edges.len() <= 2);
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 10);
    }

    #[test]
    fn round_error_rate_budget_is_exhausted() {
        let g = generators::complete(5);
        let strategy = RandomMobile::new(5, 3);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::RoundErrorRate { total: 7 },
            2,
        );
        for _ in 0..10 {
            let _ = net.exchange(full_traffic(&g, 1));
        }
        assert_eq!(net.metrics().corrupted_edge_rounds, 7);
        // Later rounds must be clean.
        assert!(net.corruption_history()[9].is_empty() || net.metrics().corrupted_edge_rounds == 7);
    }

    #[test]
    fn eavesdropper_records_but_does_not_modify() {
        let g = generators::path(3);
        let e01 = g.edge_between(0, 1).unwrap();
        let strategy = FixedEdges::new(vec![e01]);
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Eavesdropper,
            Box::new(strategy),
            CorruptionBudget::Static(vec![e01]),
            0,
        );
        let t = full_traffic(&g, 9);
        let out = net.exchange(t.clone());
        assert!(out.agrees_with(&t), "eavesdropper must not alter traffic");
        assert_eq!(net.view_log().len(), 1);
        let entry = &net.view_log().entries[0];
        assert_eq!(entry.edge, e01);
        assert_eq!(entry.forward, Some(vec![9]));
        assert_eq!(entry.backward, Some(vec![10]));
        assert!(!net.view_log().canonical().is_empty());
    }

    #[test]
    fn idle_rounds_advance_the_clock() {
        let g = generators::path(2);
        let mut net = Network::fault_free(g);
        net.idle_rounds(4);
        assert_eq!(net.round(), 4);
    }

    #[test]
    fn node_rngs_are_distinct_and_deterministic() {
        let mut a = Network::node_rng(7, 0);
        let mut a2 = Network::node_rng(7, 0);
        let mut b = Network::node_rng(7, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let xs2: Vec<u64> = (0..4).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }
}
