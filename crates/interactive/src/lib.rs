//! Interactive-coding tools: the Rajagopalan–Schulman compiler guarantee and
//! the parallel tree-protocol scheduler of Lemma 3.3.
//!
//! The byzantine compilers of Fischer–Parter use interactive coding purely as a
//! black box (Theorem 3.2): an RS-compiled protocol over a subgraph ends
//! correctly as long as the adversary corrupts less than a `1/(c_RS·m)`
//! fraction of its communication.  This crate provides:
//!
//! * [`scheduler::RsScheduler`] — runs one RS-compiled protocol per tree of a
//!   packing, in parallel on the simulator, enforcing exactly the black-box
//!   guarantee (per-instance corruption accounting against real adversary
//!   choices) and reporting which instances ended correctly — Lemma 3.3;
//! * [`replay`] — a concrete, executable resilient transport (repetition +
//!   majority along trees and path systems), used by the cycle-cover compiler
//!   of Theorem 1.4 and as a non-oracle demonstration of the same pipeline.
//!
//! See DESIGN.md for the substitution note on tree codes.

pub mod replay;
pub mod scheduler;

pub use replay::{
    flood_paths_majority, majority, repeated_tree_broadcast, repeated_tree_sum, replay_trace_jsonl,
};
pub use scheduler::{FamilyRunReport, RsScheduler, SchedulePlan, TreeRunReport, C_RS, T_RS};
