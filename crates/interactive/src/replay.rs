//! A concrete (non-oracle) resilient transport: repetition with majority
//! voting along trees and paths.
//!
//! The paper's compilers only use the Rajagopalan–Schulman compiler as a black
//! box; [`crate::scheduler::RsScheduler`] models that black box exactly.  This
//! module provides an *executable* instantiation of the same idea for a single
//! tree at a time: every hop retransmits each symbol `2T + 1` times and the
//! receiver takes the majority, so the protocol survives any adversary that
//! corrupts at most `T` of the repetitions on any one edge.  It is used
//! (a) to demonstrate an end-to-end concrete pipeline without the oracle, and
//! (b) by the cycle-cover compiler of Theorem 1.4, whose resilience argument is
//! exactly this flooding-with-majority argument (Lemma 5.6).

use congest_sim::network::Network;
use congest_sim::traffic::{Payload, Traffic};
use netgraph::spanning::RootedTree;
use netgraph::{Graph, NodeId};
use std::collections::HashMap;

/// Take the majority value of a list of payloads (`None` if the list is empty
/// or no value attains a strict majority... ties resolved by the lexicographically
/// smallest most-frequent value, matching the paper's "majority or 0" rule).
pub fn majority(values: &[Payload]) -> Option<Payload> {
    if values.is_empty() {
        return None;
    }
    let mut counts: HashMap<&Payload, usize> = HashMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(v, _)| v.clone())
}

/// Broadcast `value` from the root of `tree` to every tree node, repeating each
/// hop `repetitions` times in consecutive rounds with per-hop majority voting.
///
/// Round cost: `tree.height() * repetitions` network rounds.  Returns, for each
/// node, the value it decided on (`None` for nodes outside the tree or that
/// received nothing).
///
/// Resilience: a byzantine adversary must corrupt at least `⌈repetitions/2⌉`
/// rounds on some single tree edge to change any node's decision.
pub fn repeated_tree_broadcast(
    net: &mut Network,
    tree: &RootedTree,
    value: &Payload,
    repetitions: usize,
) -> Vec<Option<Payload>> {
    let g = net.graph().clone();
    let n = g.node_count();
    let reps = repetitions.max(1);
    let depths = tree.depths();
    let children = tree.children();
    let height = tree.height();

    // decided[v] = the value node v has committed to relay.
    let mut decided: Vec<Option<Payload>> = vec![None; n];
    decided[tree.root] = Some(value.clone());

    for level in 0..height {
        // Nodes at depth `level` transmit to their children, `reps` times.
        let mut received: Vec<Vec<Payload>> = vec![Vec::new(); n];
        for _ in 0..reps {
            let mut traffic = Traffic::new(&g);
            for v in 0..n {
                if depths[v] != Some(level) {
                    continue;
                }
                if let Some(val) = &decided[v] {
                    for &c in &children[v] {
                        traffic.send(&g, v, c, val.clone());
                    }
                }
            }
            let delivered = net.exchange(traffic);
            for v in 0..n {
                if depths[v] == Some(level + 1) {
                    if let Some(p) = tree.parent[v] {
                        if let Some(msg) = delivered.get(&g, p, v) {
                            received[v].push(msg.to_vec());
                        }
                    }
                }
            }
        }
        for v in 0..n {
            if depths[v] == Some(level + 1) {
                decided[v] = majority(&received[v]);
            }
        }
    }
    decided
}

/// Convergecast with repetition: every node holds a word; words are summed
/// (wrapping) up the tree toward the root, with each hop repeated `repetitions`
/// times and per-hop majority voting.  Returns the root's total (`None` if the
/// root never heard from some child).
///
/// This mirrors the sketch-aggregation pattern of the compiler at the
/// granularity the concrete transport supports (single words).
pub fn repeated_tree_sum(
    net: &mut Network,
    tree: &RootedTree,
    values: &[u64],
    repetitions: usize,
) -> Option<u64> {
    let g = net.graph().clone();
    let n = g.node_count();
    assert_eq!(values.len(), n);
    let reps = repetitions.max(1);
    let depths = tree.depths();
    let children = tree.children();
    let height = tree.height();

    // partial[v] = sum of v's subtree once computed.
    let mut partial: Vec<Option<u64>> = (0..n)
        .map(|v| {
            if tree.in_tree[v] && children[v].is_empty() {
                Some(values[v])
            } else {
                None
            }
        })
        .collect();

    // Process levels bottom-up: at step `d`, nodes at depth `height - d` send to parents.
    for step in 0..height {
        let sender_depth = height - step;
        let mut received: Vec<HashMap<NodeId, Vec<Payload>>> = vec![HashMap::new(); n];
        for _ in 0..reps {
            let mut traffic = Traffic::new(&g);
            for v in 0..n {
                if depths[v] != Some(sender_depth) {
                    continue;
                }
                if let (Some(val), Some(p)) = (partial[v], tree.parent[v]) {
                    traffic.send(&g, v, p, vec![val]);
                }
            }
            let delivered = net.exchange(traffic);
            for (v, depth) in depths.iter().enumerate().take(n) {
                if *depth == Some(sender_depth) {
                    if let Some(p) = tree.parent[v] {
                        if let Some(msg) = delivered.get(&g, v, p) {
                            received[p].entry(v).or_default().push(msg.to_vec());
                        }
                    }
                }
            }
        }
        // Parents at depth sender_depth - 1 fold in their children's majorities.
        for v in 0..n {
            if depths[v] != Some(sender_depth - 1) || !tree.in_tree[v] {
                continue;
            }
            let mut acc = values[v];
            let mut complete = true;
            for &c in &children[v] {
                // Children deeper than sender_depth already relayed through
                // intermediate levels; only direct children at sender_depth matter here.
                if depths[c] == Some(sender_depth) {
                    match received[v].get(&c).and_then(|msgs| majority(msgs)) {
                        Some(m) if !m.is_empty() => acc = acc.wrapping_add(m[0]),
                        _ => complete = false,
                    }
                } else if let Some(p) = partial[c] {
                    acc = acc.wrapping_add(p);
                } else {
                    complete = false;
                }
            }
            partial[v] = if complete { Some(acc) } else { None };
        }
    }
    partial[tree.root]
}

/// Flood a message from `source` to `target` along a collection of paths, each
/// transmission repeated so that the receiver can take a global majority over
/// `paths.len() × window` received copies — the Patra et al. pattern used by
/// the Theorem 1.4 cycle-cover compiler.
///
/// `window` is the number of rounds each path keeps re-sending (use
/// `2·f·dilation + dilation + 1` for resilience against `f` mobile faults, per
/// Lemma 5.6).  Returns the value `target` decides (majority of everything it
/// received over the last edge of each path), or `None` if it received nothing.
pub fn flood_paths_majority(
    net: &mut Network,
    paths: &[Vec<NodeId>],
    value: &Payload,
    window: usize,
) -> Option<Payload> {
    let g: Graph = net.graph().clone();
    if paths.is_empty() {
        return None;
    }
    let window = window.max(1);
    let dilation = paths.iter().map(|p| p.len() - 1).max().unwrap_or(0);
    let total_rounds = dilation + window;
    // pipe[path][hop] = the value currently held by the node at position `hop`
    // of the path (what it would forward next round).
    let mut pipe: Vec<Vec<Option<Payload>>> = paths
        .iter()
        .map(|p| {
            let mut v = vec![None; p.len()];
            v[0] = Some(value.clone());
            v
        })
        .collect();
    let mut target_received: Vec<Payload> = Vec::new();

    for _round in 0..total_rounds {
        let mut traffic = Traffic::new(&g);
        // Every path position forwards its current value one hop.
        for (pi, path) in paths.iter().enumerate() {
            for hop in 0..path.len() - 1 {
                if let Some(val) = &pipe[pi][hop] {
                    traffic.send(&g, path[hop], path[hop + 1], val.clone());
                }
            }
        }
        let delivered = net.exchange(traffic);
        for (pi, path) in paths.iter().enumerate() {
            for hop in (0..path.len() - 1).rev() {
                if pipe[pi][hop].is_some() {
                    let from = path[hop];
                    let to = path[hop + 1];
                    if let Some(msg) = delivered.get(&g, from, to) {
                        if hop + 1 == path.len() - 1 {
                            target_received.push(msg.to_vec());
                        } else {
                            pipe[pi][hop + 1] = Some(msg.to_vec());
                        }
                    }
                }
            }
        }
    }
    majority(&target_received)
}

/// Render a **traced** run as a human-auditable replay script: one JSONL
/// header line, one `kind:"round"` line per network round the adversary
/// touched (grouping the trace's corruption events by virtual time), and a
/// closing `kind:"verdict"` line with the correction outcome.
///
/// This is the replay artifact the red-team shrinker emits next to each
/// minimal counterexample spec: the spec replays the failure through the
/// campaign engine, and this script shows *where* the synthesized schedule
/// struck and what it broke, round by round.  The run must have been executed
/// with ring tracing ([`obs::TraceSpec::ring`]) — an untraced report produces
/// a script with no round lines.
pub fn replay_trace_jsonl(report: &congest_sim::scenario::RunReport) -> String {
    use obs::{EventClass, EventKind};

    fn opt_bool(v: Option<bool>) -> &'static str {
        match v {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        }
    }
    let metric = |name: &str| -> u64 {
        report
            .notes
            .metrics()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v as u64)
            .unwrap_or(0)
    };

    let mut out = format!(
        "{{\"kind\":\"replay\",\"adversary\":\"{}\",\"compiler\":\"{}\",\"payload_rounds\":{},\
         \"network_rounds\":{},\"corruption_events\":{}}}\n",
        report.adversary,
        report.compiler,
        report.payload_rounds,
        report.network_rounds,
        report.trace.class_count(EventClass::Corruption),
    );
    // Group the trace's corruption points by virtual time (events arrive in
    // time order, so one forward pass suffices), then run-length collapse
    // consecutive rounds that hit the same edge set — a cyclic synthesized
    // schedule corrupts identically for thousands of network rounds, and one
    // `"to"`-spanned line per streak keeps the script readable.
    let mut rounds: Vec<(u64, Vec<usize>)> = Vec::new();
    for ev in &report.trace.events {
        let EventKind::CorruptionApplied { edge } = ev.kind else {
            continue;
        };
        match rounds.last_mut() {
            Some((t, edges)) if *t == ev.time => edges.push(edge),
            _ => rounds.push((ev.time, vec![edge])),
        }
    }
    let mut i = 0;
    while i < rounds.len() {
        let (from, edges) = (&rounds[i].0, &rounds[i].1);
        let mut j = i + 1;
        while j < rounds.len() && rounds[j].0 == rounds[j - 1].0 + 1 && rounds[j].1 == *edges {
            j += 1;
        }
        let to = rounds[j - 1].0;
        out.push_str(&format!(
            "{{\"kind\":\"round\",\"round\":{from},\"to\":{to},\"edges\":["
        ));
        for (k, e) in edges.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&e.to_string());
        }
        out.push_str("]}\n");
        i = j;
    }
    out.push_str(&format!(
        "{{\"kind\":\"verdict\",\"agrees\":{},\"corrected\":{},\"mismatches_after\":{},\
         \"failed_trees\":{},\"rewinds\":{}}}\n",
        opt_bool(report.agrees_with_fault_free()),
        opt_bool(report.notes.fully_corrected()),
        metric("mismatches_after"),
        metric("failed_trees"),
        report.trace.class_count(EventClass::Rewind),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{
        AdversaryRole, CorruptionBudget, CorruptionMode, FixedEdges, RandomMobile,
    };
    use netgraph::connectivity::edge_disjoint_paths;
    use netgraph::generators;
    use netgraph::spanning::bfs_tree;

    #[test]
    fn majority_rules() {
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[vec![1]]), Some(vec![1]));
        assert_eq!(majority(&[vec![1], vec![2], vec![1]]), Some(vec![1]));
    }

    #[test]
    fn fault_free_broadcast_reaches_everyone() {
        let g = generators::grid(3, 3);
        let tree = bfs_tree(&g, 0);
        let mut net = Network::fault_free(g);
        let out = repeated_tree_broadcast(&mut net, &tree, &vec![42, 43], 1);
        for slot in out.iter().take(9) {
            assert_eq!(*slot, Some(vec![42, 43]));
        }
    }

    #[test]
    fn broadcast_survives_minority_corruption_on_an_edge() {
        let g = generators::path(4);
        let tree = bfs_tree(&g, 0);
        let target = g.edge_between(1, 2).unwrap();
        // A static adversary corrupts edge (1,2) in every round, but we repeat
        // every hop 5 times — wait: a *static always-on* adversary breaks
        // repetition, so use a budget that only allows 2 corruptions in total.
        let strategy = FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(9));
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::RoundErrorRate { total: 2 },
            1,
        );
        let out = repeated_tree_broadcast(&mut net, &tree, &vec![7], 5);
        assert_eq!(out[3], Some(vec![7]));
        assert_eq!(out[2], Some(vec![7]));
    }

    #[test]
    fn broadcast_breaks_under_unbounded_static_corruption() {
        // Sanity: the repetition transport is NOT resilient to an adversary that
        // corrupts the same edge every round — that is exactly why the paper
        // needs tree packings rather than a single tree.
        let g = generators::path(3);
        let tree = bfs_tree(&g, 0);
        let target = g.edge_between(1, 2).unwrap();
        let strategy = FixedEdges::new(vec![target]).with_mode(CorruptionMode::Constant(9));
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(strategy),
            CorruptionBudget::Static(vec![target]),
            1,
        );
        let out = repeated_tree_broadcast(&mut net, &tree, &vec![7], 5);
        assert_eq!(out[2], Some(vec![9]));
    }

    #[test]
    fn tree_sum_fault_free() {
        let g = generators::grid(2, 3);
        let tree = bfs_tree(&g, 0);
        let values: Vec<u64> = (0..6).map(|v| v as u64 + 1).collect();
        let mut net = Network::fault_free(g);
        let total = repeated_tree_sum(&mut net, &tree, &values, 1);
        assert_eq!(total, Some(21));
    }

    #[test]
    fn tree_sum_with_light_mobile_noise() {
        let g = generators::complete(6);
        let tree = bfs_tree(&g, 0);
        let values = vec![5u64; 6];
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(1, 3).with_mode(CorruptionMode::Drop)),
            CorruptionBudget::RoundErrorRate { total: 1 },
            3,
        );
        let total = repeated_tree_sum(&mut net, &tree, &values, 5);
        assert_eq!(total, Some(30));
    }

    #[test]
    fn flood_paths_majority_fault_free_and_under_attack() {
        let g = generators::complete(6);
        let paths = edge_disjoint_paths(&g, 0, 5, 5);
        assert_eq!(paths.len(), 5);
        let mut clean = Network::fault_free(g.clone());
        assert_eq!(
            flood_paths_majority(&mut clean, &paths, &vec![1234], 3),
            Some(vec![1234])
        );
        // One mobile fault per round cannot overturn the majority over 5
        // edge-disjoint paths with a sufficiently long window.
        let dilation = paths.iter().map(|p| p.len() - 1).max().unwrap();
        let window = 2 * dilation + dilation + 1; // f = 1
        let mut attacked = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(1, 7).with_mode(CorruptionMode::Constant(666))),
            CorruptionBudget::Mobile { f: 1 },
            7,
        );
        assert_eq!(
            flood_paths_majority(&mut attacked, &paths, &vec![1234], window),
            Some(vec![1234])
        );
    }
}
