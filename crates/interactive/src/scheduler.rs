//! The parallel tree-protocol scheduler (Lemma 3.3) with the Rajagopalan–
//! Schulman compilation guarantee (Theorem 3.2) applied per tree.
//!
//! The byzantine compilers repeatedly run one sub-protocol per tree of a
//! `(k, D_TP, η)` packing — sketch aggregation up each tree, share broadcast
//! down each tree — *in parallel*, and only need the following guarantee: over
//! a window of `t_RS · r · η` rounds, all but `t_RS · c_RS · f · η` of the `k`
//! RS-compiled instances end correctly (Lemma 3.3).
//!
//! The paper treats the RS compiler as a black box providing Theorem 3.2:
//! an instance ends correctly iff the adversary corrupted less than a
//! `1/(c_RS · m)` fraction of its communication.  [`RsScheduler`] reproduces
//! exactly that black-box semantics while keeping the *adversary dynamics*
//! real: the scheduled rounds are executed on the [`Network`] (so a mobile
//! adversary chooses real edges in real rounds and the traffic pattern matches
//! the schedule of Lemma 3.3), corruptions are attributed to the tree instance
//! whose message occupied the corrupted edge in that round, and an instance is
//! failed once its attributed corruption exceeds the RS threshold.  The
//! concrete (non-oracle) instantiation of the same interface lives in
//! [`crate::replay`].

use congest_sim::network::Network;
use congest_sim::traffic::Traffic;
use netgraph::tree_packing::TreePacking;
use netgraph::{EdgeId, Graph};

/// The constant `c_RS` of Theorem 3.2: an instance fails once the adversary has
/// corrupted at least a `1/c_RS` fraction of its per-edge rounds.
pub const C_RS: usize = 2;

/// The constant `t_RS` of Theorem 3.2 (round blow-up of the RS compilation).
pub const T_RS: usize = 1;

/// Outcome of one scheduled per-tree protocol instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeRunReport {
    /// Index of the tree in the packing.
    pub tree: usize,
    /// Number of corrupted edge-round messages attributed to this instance.
    pub corrupted_messages: usize,
    /// Whether the RS-compiled instance ended correctly.
    pub ok: bool,
}

/// Report of a full scheduled family run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyRunReport {
    /// Per-tree outcome.
    pub per_tree: Vec<TreeRunReport>,
    /// Number of network rounds the schedule consumed.
    pub rounds_used: usize,
}

impl FamilyRunReport {
    /// Indices of trees whose instance ended correctly.
    pub fn successful_trees(&self) -> Vec<usize> {
        self.per_tree
            .iter()
            .filter(|r| r.ok)
            .map(|r| r.tree)
            .collect()
    }

    /// Number of instances that ended correctly.
    pub fn success_count(&self) -> usize {
        self.per_tree.iter().filter(|r| r.ok).count()
    }
}

/// Precomputed schedule structure for [`RsScheduler`] over a fixed
/// `(graph, packing)` pair: the per-edge tree occupancy lists and the
/// packing's load `η`.
///
/// Building the plan is `O(k·m)`, and the byzantine compilers run the same
/// family many times per execution (once per simulated round plus once per
/// safe-broadcast chunk), so callers build it once per packing — ideally in
/// `Compiler::prepare`, where the campaign artifact cache then shares it
/// across every `(seed, adversary)` cell.  The plan carries no randomness
/// and no network state: running through a plan is byte-identical to
/// [`RsScheduler::run_family`] building the same structure per call.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// For every edge, the (ordered) list of trees that use it.
    users: Vec<Vec<usize>>,
    /// The packing's maximum edge load `η` (at least 1).
    eta: usize,
}

impl SchedulePlan {
    /// Build the plan for `packing` over `g`.
    pub fn new(g: &Graph, packing: &TreePacking) -> Self {
        let users = (0..g.edge_count())
            .map(|e| packing.trees_using_edge(e))
            .collect();
        SchedulePlan {
            users,
            eta: packing.load(g).max(1),
        }
    }

    /// The packing's maximum edge load `η` (≥ 1), as scheduled.
    pub fn eta(&self) -> usize {
        self.eta
    }
}

/// The Lemma 3.3 scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct RsScheduler;

impl RsScheduler {
    /// Run one RS-compiled protocol per tree of `packing`, all in parallel, on
    /// the network.
    ///
    /// * `rounds_per_protocol` — the round complexity `r` of each individual
    ///   (uncompiled) tree protocol (e.g. `Θ(D_TP + sketch words)`),
    /// * the schedule executes `T_RS · r · η` network rounds where
    ///   `η = max_e |{trees using e}|` (the packing's load, at least 1),
    /// * in every scheduled round each tree edge carries a one-word message of
    ///   the instance scheduled on it, so the adversary faces the real traffic
    ///   pattern of Lemma 3.3,
    /// * each corruption is attributed to the instance whose message occupied
    ///   the corrupted edge; an instance fails once its attributed corruption
    ///   reaches `max(1, r / c_RS)` messages (the Theorem 3.2 threshold).
    ///
    /// Returns which instances ended correctly.  What the surviving instances
    /// *compute* is up to the caller (the compiler applies the corresponding
    /// fault-free result to successful trees and treats failed trees as
    /// adversarially controlled).
    ///
    /// Builds a fresh [`SchedulePlan`] per call; callers that schedule the
    /// same packing repeatedly should build the plan once and use
    /// [`RsScheduler::run_planned`].
    pub fn run_family(
        &self,
        net: &mut Network,
        packing: &TreePacking,
        rounds_per_protocol: usize,
    ) -> FamilyRunReport {
        let plan = SchedulePlan::new(net.graph(), packing);
        self.run_planned(net, packing, &plan, rounds_per_protocol)
    }

    /// [`RsScheduler::run_family`] through a precomputed [`SchedulePlan`].
    ///
    /// The scheduled rounds reuse one traffic buffer (`begin_round` +
    /// `exchange_in_place`, the zero-allocation engine path), so the steady
    /// state allocates nothing per round.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was built for a graph with a different edge count.
    pub fn run_planned(
        &self,
        net: &mut Network,
        packing: &TreePacking,
        plan: &SchedulePlan,
        rounds_per_protocol: usize,
    ) -> FamilyRunReport {
        let g = net.graph().clone();
        assert_eq!(
            plan.users.len(),
            g.edge_count(),
            "schedule plan was built for a different graph"
        );
        let k = packing.len();
        let eta = plan.eta;
        let r = rounds_per_protocol.max(1);
        let total_rounds = T_RS * r * eta;
        let mut corrupted = vec![0usize; k];
        let mut traffic = Traffic::new(&g);
        let mut owner_of_edge: Vec<Option<usize>> = vec![None; g.edge_count()];

        for round in 0..total_rounds {
            let slot = round % eta;
            // Build the round's traffic: edge e carries (a word tagged with) the
            // instance users[e][slot], if such an instance exists.
            traffic.begin_round(&g);
            owner_of_edge.fill(None);
            for (e, users) in plan.users.iter().enumerate() {
                if let Some(&tree_idx) = users.get(slot) {
                    owner_of_edge[e] = Some(tree_idx);
                    let edge = g.edge(e);
                    let word = [tree_idx as u64, round as u64];
                    traffic.send(&g, edge.u, edge.v, word);
                    traffic.send(&g, edge.v, edge.u, word);
                }
            }
            net.exchange_in_place(&mut traffic);
            // Attribute this round's corruptions.
            if let Some(edges) = net.corruption_history().last() {
                for &e in edges {
                    if let Some(tree_idx) = owner_of_edge[e] {
                        corrupted[tree_idx] += 1; // one controlled edge-round of this instance
                    }
                }
            }
        }

        let threshold = (r / C_RS).max(1);
        let per_tree = (0..k)
            .map(|tree| TreeRunReport {
                tree,
                corrupted_messages: corrupted[tree],
                ok: corrupted[tree] < threshold,
            })
            .collect();
        FamilyRunReport {
            per_tree,
            rounds_used: total_rounds,
        }
    }

    /// The Lemma 3.3 bound on the number of failing instances for a mobile
    /// adversary controlling `f` edges per round: `t_RS · c_RS · f · η`.
    pub fn failure_bound(f: usize, eta: usize) -> usize {
        T_RS * C_RS * f * eta
    }
}

/// Helper for experiments: which of the packing's trees avoid a given set of
/// corrupted edges entirely (the "fault-free trees" a *static* adversary would
/// leave behind; used by baselines).
pub fn trees_avoiding_edges(packing: &TreePacking, g: &Graph, corrupted: &[EdgeId]) -> Vec<usize> {
    let _ = g;
    (0..packing.len())
        .filter(|&i| {
            packing.trees[i]
                .edges
                .iter()
                .all(|e| !corrupted.contains(e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile, SweepMobile};
    use netgraph::generators;
    use netgraph::tree_packing::{greedy_low_depth_packing, star_packing};

    #[test]
    fn fault_free_schedule_succeeds_everywhere() {
        let g = generators::complete(8);
        let packing = star_packing(&g, 0);
        let mut net = Network::fault_free(g);
        let report = RsScheduler.run_family(&mut net, &packing, 6);
        assert_eq!(report.success_count(), packing.len());
        assert_eq!(report.rounds_used, T_RS * 6 * 2);
        assert_eq!(net.round(), report.rounds_used);
    }

    #[test]
    fn mobile_adversary_fails_only_boundedly_many_trees() {
        let g = generators::complete(12);
        let packing = star_packing(&g, 0);
        let eta = packing.load(&g);
        let f = 3;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, 11)),
            CorruptionBudget::Mobile { f },
            11,
        );
        let report = RsScheduler.run_family(&mut net, &packing, 10);
        let failures = packing.len() - report.success_count();
        assert!(
            failures <= RsScheduler::failure_bound(f, eta),
            "failures {failures} exceed the Lemma 3.3 bound {}",
            RsScheduler::failure_bound(f, eta)
        );
        // The adversary did act.
        assert!(net.metrics().corrupted_edge_rounds > 0);
    }

    #[test]
    fn sweeping_adversary_cannot_kill_a_majority_on_the_clique() {
        // Even an adversary that deliberately cycles over all edges cannot fail
        // more than the bound when f is small relative to k/η.
        let g = generators::complete(16);
        let packing = star_packing(&g, 0);
        let f = 2;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(SweepMobile::new(f)),
            CorruptionBudget::Mobile { f },
            3,
        );
        let report = RsScheduler.run_family(&mut net, &packing, 12);
        assert!(
            report.success_count() * 2 > packing.len(),
            "majority of instances must survive"
        );
    }

    #[test]
    fn greedy_packing_schedule_on_circulant() {
        let g = generators::circulant(14, 3);
        let packing = greedy_low_depth_packing(&g, 0, 5, 2);
        let f = 1;
        let mut net = Network::new(
            g.clone(),
            AdversaryRole::Byzantine,
            Box::new(RandomMobile::new(f, 5)),
            CorruptionBudget::Mobile { f },
            5,
        );
        let report = RsScheduler.run_family(&mut net, &packing, 8);
        let eta = packing.load(&g);
        assert!(packing.len() - report.success_count() <= RsScheduler::failure_bound(f, eta));
    }

    #[test]
    fn trees_avoiding_edges_identifies_clean_trees() {
        let g = generators::complete(6);
        let packing = star_packing(&g, 0);
        // Corrupt two edges far from the root: the star centred at 1 uses (1,2),
        // and the star centred at 4 uses (4,5); both become dirty, while the
        // stars centred at 0 and 3 avoid both corrupted edges.
        let corrupted: Vec<EdgeId> =
            vec![g.edge_between(1, 2).unwrap(), g.edge_between(4, 5).unwrap()];
        let clean = trees_avoiding_edges(&packing, &g, &corrupted);
        assert!(clean.contains(&0));
        assert!(clean.contains(&3));
        assert!(!clean.contains(&1));
        assert!(!clean.contains(&4));
        for &i in &clean {
            for &e in &packing.trees[i].edges {
                assert!(!corrupted.contains(&e));
            }
        }
    }
}
