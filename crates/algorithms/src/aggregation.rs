//! BFS-tree construction and convergecast aggregation.
//!
//! `BfsTreeAlgorithm` builds a breadth-first spanning tree from a root (each
//! node outputs its parent and depth); `ConvergecastSum` additionally
//! aggregates per-node inputs up the tree so the root learns their sum, then
//! broadcasts the total back down — the classic "distributed sensor sum"
//! workload used by the secure-aggregation example.

use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::traversal::diameter;
use netgraph::{Graph, NodeId};

/// Distributed BFS tree construction.
///
/// Output per node: `[parent + 1, depth]` (`parent + 1` so the root, which has
/// no parent, outputs `0`).
#[derive(Debug, Clone)]
pub struct BfsTreeAlgorithm {
    graph: Graph,
    root: NodeId,
    rounds: usize,
    depth: Vec<Option<u64>>,
    parent: Vec<Option<NodeId>>,
    announced: Vec<bool>,
}

impl BfsTreeAlgorithm {
    /// Build a BFS tree rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn new(graph: Graph, root: NodeId) -> Self {
        let d = diameter(&graph).expect("BfsTreeAlgorithm requires a connected graph");
        let n = graph.node_count();
        let mut depth = vec![None; n];
        depth[root] = Some(0);
        BfsTreeAlgorithm {
            graph,
            root,
            rounds: d.max(1),
            depth,
            parent: vec![None; n],
            announced: vec![false; n],
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Expected outputs in a correct execution (parents chosen by smallest
    /// announcing neighbour are not unique, so only depths are compared).
    pub fn expected_depths(&self) -> Vec<u64> {
        netgraph::traversal::bfs(&self.graph, self.root)
            .dist
            .iter()
            .map(|d| d.unwrap() as u64)
            .collect()
    }
}

impl CongestAlgorithm for BfsTreeAlgorithm {
    fn name(&self) -> String {
        "bfs-tree".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, _round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        for v in self.graph.nodes() {
            if let Some(d) = self.depth[v] {
                if !self.announced[v] {
                    for &(u, _) in self.graph.neighbors(v) {
                        out.send(&self.graph, v, u, [d]);
                    }
                    self.announced[v] = true;
                }
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            if self.depth[v].is_some() {
                continue;
            }
            // Adopt the smallest-depth announcing neighbour as parent.
            let mut best: Option<(u64, NodeId)> = None;
            for (from, payload) in inbox.inbox(&self.graph, v) {
                if let Some(&d) = payload.first() {
                    if best.is_none_or(|(bd, bf)| d < bd || (d == bd && from < bf)) {
                        best = Some((d, from));
                    }
                }
            }
            if let Some((d, from)) = best {
                self.depth[v] = Some(d + 1);
                self.parent[v] = Some(from);
            }
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.graph
            .nodes()
            .map(|v| {
                vec![
                    self.parent[v].map(|p| p as u64 + 1).unwrap_or(0),
                    self.depth[v].unwrap_or(u64::MAX),
                ]
            })
            .collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(2)
    }
}

/// Convergecast sum over an internally constructed BFS tree, followed by a
/// broadcast of the total.
///
/// Output per node: `[total]` where `total` is the sum of all nodes' inputs.
#[derive(Debug, Clone)]
pub struct ConvergecastSum {
    graph: Graph,
    root: NodeId,
    inputs: Vec<u64>,
    rounds: usize,
    diam: usize,
    // BFS phase state.
    depth: Vec<Option<u64>>,
    parent: Vec<Option<NodeId>>,
    announced: Vec<bool>,
    // Aggregation phase state.
    subtotal: Vec<u64>,
    sent_up: Vec<bool>,
    received_from: Vec<Vec<NodeId>>,
    // Broadcast phase state.
    total: Vec<Option<u64>>,
    forwarded_total: Vec<bool>,
}

impl ConvergecastSum {
    /// Sum `inputs` (one per node) toward `root`, then tell everyone the total.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `inputs.len() != n`.
    pub fn new(graph: Graph, root: NodeId, inputs: Vec<u64>) -> Self {
        let d = diameter(&graph).expect("ConvergecastSum requires a connected graph");
        let n = graph.node_count();
        assert_eq!(inputs.len(), n, "one input per node required");
        let mut depth = vec![None; n];
        depth[root] = Some(0);
        let subtotal = inputs.clone();
        let mut total = vec![None; n];
        let rounds = d.max(1) * 3 + 2;
        if n == 1 {
            total[root] = Some(inputs[root]);
        }
        ConvergecastSum {
            graph,
            root,
            inputs,
            rounds,
            diam: d.max(1),
            depth,
            parent: vec![None; n],
            announced: vec![false; n],
            subtotal,
            sent_up: vec![false; n],
            received_from: vec![Vec::new(); n],
            total,
            forwarded_total: vec![false; n],
        }
    }

    /// The correct total.
    pub fn expected_total(&self) -> u64 {
        self.inputs
            .iter()
            .copied()
            .fold(0u64, |a, b| a.wrapping_add(b))
    }

    /// Expected output for every node.
    pub fn expected_outputs(&self) -> Vec<Output> {
        vec![vec![self.expected_total()]; self.graph.node_count()]
    }

    fn children_of(&self, v: NodeId) -> Vec<NodeId> {
        self.graph
            .nodes()
            .filter(|&c| self.parent[c] == Some(v))
            .collect()
    }
}

/// Message tags for the three phases.
const TAG_BFS: u64 = 1;
const TAG_UP: u64 = 2;
const TAG_TOTAL: u64 = 3;

impl CongestAlgorithm for ConvergecastSum {
    fn name(&self) -> String {
        "convergecast-sum".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        if round < self.diam {
            // Phase 1: BFS construction.
            for v in self.graph.nodes() {
                if let Some(d) = self.depth[v] {
                    if !self.announced[v] {
                        for &(u, _) in self.graph.neighbors(v) {
                            out.send(&self.graph, v, u, [TAG_BFS, d]);
                        }
                        self.announced[v] = true;
                    }
                }
            }
        } else if round < 2 * self.diam + 1 {
            // Phase 2: convergecast — a node sends its subtotal to its parent
            // once it has heard from all of its children.
            for v in self.graph.nodes() {
                if v == self.root || self.sent_up[v] {
                    continue;
                }
                let children = self.children_of(v);
                let ready = children.iter().all(|c| self.received_from[v].contains(c));
                if ready {
                    if let Some(p) = self.parent[v] {
                        out.send(&self.graph, v, p, [TAG_UP, self.subtotal[v]]);
                        self.sent_up[v] = true;
                    }
                }
            }
        } else {
            // Phase 3: broadcast the total down the tree.
            if self.total[self.root].is_none() {
                let children = self.children_of(self.root);
                if children
                    .iter()
                    .all(|c| self.received_from[self.root].contains(c))
                {
                    self.total[self.root] = Some(self.subtotal[self.root]);
                }
            }
            for v in self.graph.nodes() {
                if let Some(total) = self.total[v] {
                    if !self.forwarded_total[v] {
                        for c in self.children_of(v) {
                            out.send(&self.graph, v, c, [TAG_TOTAL, total]);
                        }
                        self.forwarded_total[v] = true;
                    }
                }
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            for (from, payload) in inbox.inbox(&self.graph, v) {
                match payload.first() {
                    Some(&TAG_BFS) if self.depth[v].is_none() => {
                        if let Some(&d) = payload.get(1) {
                            self.depth[v] = Some(d + 1);
                            self.parent[v] = Some(from);
                        }
                    }
                    Some(&TAG_UP) => {
                        if let Some(&val) = payload.get(1) {
                            if !self.received_from[v].contains(&from) {
                                self.received_from[v].push(from);
                                self.subtotal[v] = self.subtotal[v].wrapping_add(val);
                            }
                        }
                    }
                    Some(&TAG_TOTAL) if self.total[v].is_none() => {
                        if let Some(&val) = payload.get(1) {
                            self.total[v] = Some(val);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.total
            .iter()
            .map(|t| t.map(|v| vec![v]).unwrap_or_default())
            .collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::run_fault_free;
    use netgraph::generators;

    #[test]
    fn bfs_depths_match_reference() {
        for g in [
            generators::grid(3, 3),
            generators::cycle(9),
            generators::hypercube(4),
        ] {
            let mut alg = BfsTreeAlgorithm::new(g.clone(), 0);
            let expected = alg.expected_depths();
            let out = run_fault_free(&mut alg);
            for v in g.nodes() {
                assert_eq!(out[v][1], expected[v], "node {v}");
                if v != 0 {
                    // The parent must be a real neighbour one level closer.
                    let parent = out[v][0] as usize - 1;
                    assert!(g.has_edge(v, parent));
                    assert_eq!(expected[parent] + 1, expected[v]);
                }
            }
        }
    }

    #[test]
    fn convergecast_sum_computes_total_everywhere() {
        for g in [
            generators::path(6),
            generators::grid(3, 4),
            generators::complete(7),
            generators::cycle(5),
        ] {
            let n = g.node_count();
            let inputs: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
            let mut alg = ConvergecastSum::new(g, 0, inputs);
            let expect = alg.expected_outputs();
            let out = run_fault_free(&mut alg);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn convergecast_single_node() {
        let g = Graph::new(1);
        let mut alg = ConvergecastSum::new(g, 0, vec![99]);
        let out = run_fault_free(&mut alg);
        assert_eq!(out, vec![vec![99]]);
    }

    #[test]
    #[should_panic]
    fn convergecast_requires_matching_inputs() {
        let g = generators::path(3);
        let _ = ConvergecastSum::new(g, 0, vec![1, 2]);
    }

    #[test]
    fn convergecast_sum_wraps_instead_of_overflowing() {
        let g = generators::path(3);
        let mut alg = ConvergecastSum::new(g, 0, vec![u64::MAX, 2, 0]);
        let out = run_fault_free(&mut alg);
        assert_eq!(out[0], vec![1u64]);
    }
}
