//! Token dissemination (gossip) and randomized colouring.
//!
//! `TokenDissemination` is the canonical *high-congestion* payload: every node
//! starts with a token and every node must learn every token.  On general
//! graphs it floods token sets for `Θ(D + n)` rounds; on the clique it
//! completes in a single round.  The congestion-sensitive compiler experiments
//! (Theorem 1.3) use it to exercise the `cong` parameter, and the CONGESTED
//! CLIQUE experiments (Theorem 1.6) use it as the payload to protect.
//!
//! `RandomizedColoring` is a round-limited conflict-resolution payload whose
//! output validity (proper colouring) is easy to verify after compilation.

use congest_sim::network::Network;
use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::traversal::diameter;
use netgraph::Graph;
use rand::Rng;

/// Every node starts with one token; every node must learn all tokens.
///
/// Each round every node forwards (up to `batch`) tokens it has not yet sent to
/// each neighbour.  Output per node: the sorted list of learned tokens.
#[derive(Debug, Clone)]
pub struct TokenDissemination {
    graph: Graph,
    tokens: Vec<u64>,
    rounds: usize,
    batch: usize,
    /// known[v] = tokens learned so far (sorted).
    known: Vec<Vec<u64>>,
    /// sent[v][u-index] = how many of v's known tokens were already sent to that neighbour.
    sent: Vec<Vec<usize>>,
}

impl TokenDissemination {
    /// Disseminate `tokens[v]` from every node `v`, forwarding at most `batch`
    /// tokens per edge per round.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected or `tokens.len() != n`.
    pub fn new(graph: Graph, tokens: Vec<u64>, batch: usize) -> Self {
        let n = graph.node_count();
        assert_eq!(tokens.len(), n, "one token per node");
        let d = diameter(&graph).expect("TokenDissemination requires a connected graph");
        let batch = batch.max(1);
        // Every node must receive n-1 foreign tokens over each incident edge in
        // the worst case; D + ceil(n/batch) rounds suffice for flooding.
        let rounds = d + n.div_ceil(batch) + 1;
        let known: Vec<Vec<u64>> = tokens.iter().map(|&t| vec![t]).collect();
        let sent = (0..n).map(|v| vec![0usize; graph.degree(v)]).collect();
        TokenDissemination {
            graph,
            tokens,
            rounds,
            batch,
            known,
            sent,
        }
    }

    /// Expected output: every node knows every token (sorted).
    pub fn expected_outputs(&self) -> Vec<Output> {
        let mut all = self.tokens.clone();
        all.sort_unstable();
        all.dedup();
        vec![all; self.graph.node_count()]
    }
}

impl CongestAlgorithm for TokenDissemination {
    fn name(&self) -> String {
        "token-dissemination".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, _round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        for v in self.graph.nodes() {
            for (ni, &(u, _)) in self.graph.neighbors(v).iter().enumerate() {
                let already = self.sent[v][ni];
                let end = (already + self.batch).min(self.known[v].len());
                if already < end {
                    self.sent[v][ni] = end;
                    out.send(&self.graph, v, u, &self.known[v][already..end]);
                }
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            for (_, payload) in inbox.inbox(&self.graph, v) {
                for &tok in payload {
                    if !self.known[v].contains(&tok) {
                        self.known[v].push(tok);
                    }
                }
            }
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.known
            .iter()
            .map(|k| {
                let mut s = k.clone();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(self.graph.node_count())
    }
}

/// Randomized (Δ+1)-colouring: every node repeatedly proposes a random colour
/// and keeps it if no undecided higher-degree-of-freedom neighbour proposed the
/// same colour in the same round.
///
/// Output per node: `[colour + 1]` once decided, `[0]` if still undecided when
/// the round budget runs out (rare for the default budget).
#[derive(Debug, Clone)]
pub struct RandomizedColoring {
    graph: Graph,
    palette: u64,
    rounds: usize,
    decided: Vec<Option<u64>>,
    proposal: Vec<u64>,
    rng_streams: Vec<rand_chacha::ChaCha8Rng>,
}

impl RandomizedColoring {
    /// Colour the graph with palette `{0, …, Δ}` using `rounds` proposal rounds
    /// and per-node randomness derived from `seed`.
    pub fn new(graph: Graph, rounds: usize, seed: u64) -> Self {
        let n = graph.node_count();
        let palette = graph.max_degree() as u64 + 1;
        let rng_streams = (0..n).map(|v| Network::node_rng(seed, v)).collect();
        RandomizedColoring {
            graph,
            palette,
            rounds: rounds.max(1),
            decided: vec![None; n],
            proposal: vec![0; n],
            rng_streams,
        }
    }

    /// Whether an output assignment is a proper colouring of all decided nodes.
    pub fn is_proper(&self, outputs: &[Output]) -> bool {
        for e in self.graph.edges() {
            let cu = outputs[e.u].first().copied().unwrap_or(0);
            let cv = outputs[e.v].first().copied().unwrap_or(0);
            if cu != 0 && cu == cv {
                return false;
            }
        }
        true
    }

    /// Fraction of nodes that decided a colour.
    pub fn decided_fraction(outputs: &[Output]) -> f64 {
        let decided = outputs
            .iter()
            .filter(|o| o.first().copied().unwrap_or(0) != 0)
            .count();
        decided as f64 / outputs.len().max(1) as f64
    }
}

impl CongestAlgorithm for RandomizedColoring {
    fn name(&self) -> String {
        "randomized-coloring".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, _round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        for v in self.graph.nodes() {
            let msg = match self.decided[v] {
                Some(c) => [1, c],
                None => {
                    self.proposal[v] = self.rng_streams[v].gen_range(0..self.palette);
                    [0, self.proposal[v]]
                }
            };
            for &(u, _) in self.graph.neighbors(v) {
                out.send(&self.graph, v, u, msg);
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            if self.decided[v].is_some() {
                continue;
            }
            let mut conflict = false;
            for (from, payload) in inbox.inbox(&self.graph, v) {
                let (is_final, colour) = (
                    payload.first().copied().unwrap_or(0),
                    payload.get(1).copied().unwrap_or(u64::MAX),
                );
                if colour == self.proposal[v] && (is_final == 1 || from < v) {
                    conflict = true;
                }
            }
            if !conflict {
                self.decided[v] = Some(self.proposal[v]);
            }
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.decided
            .iter()
            .map(|d| vec![d.map(|c| c + 1).unwrap_or(0)])
            .collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(2 * self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::run_fault_free;
    use netgraph::generators;

    #[test]
    fn dissemination_on_cycle_and_clique() {
        for g in [
            generators::cycle(7),
            generators::complete(6),
            generators::grid(2, 4),
        ] {
            let n = g.node_count();
            let tokens: Vec<u64> = (0..n as u64).map(|v| 1000 + v).collect();
            let mut alg = TokenDissemination::new(g, tokens, 2);
            let expect = alg.expected_outputs();
            let out = run_fault_free(&mut alg);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn clique_dissemination_with_full_batch_is_fast() {
        let g = generators::complete(8);
        let tokens: Vec<u64> = (0..8).collect();
        let alg = TokenDissemination::new(g, tokens, 8);
        assert!(alg.rounds() <= 3);
    }

    #[test]
    #[should_panic]
    fn dissemination_requires_one_token_per_node() {
        let g = generators::path(3);
        let _ = TokenDissemination::new(g, vec![1], 1);
    }

    #[test]
    fn coloring_is_proper_on_various_graphs() {
        for (i, g) in [
            generators::cycle(9),
            generators::complete(6),
            generators::grid(4, 4),
            generators::hypercube(4),
        ]
        .into_iter()
        .enumerate()
        {
            let mut alg = RandomizedColoring::new(g, 30, 42 + i as u64);
            let out = run_fault_free(&mut alg);
            assert!(alg.is_proper(&out), "improper colouring on graph {i}");
            assert!(
                RandomizedColoring::decided_fraction(&out) > 0.95,
                "too many undecided nodes on graph {i}"
            );
        }
    }

    #[test]
    fn coloring_uses_at_most_delta_plus_one_colors() {
        let g = generators::complete(5);
        let mut alg = RandomizedColoring::new(g.clone(), 40, 7);
        let out = run_fault_free(&mut alg);
        for o in &out {
            let c = o[0];
            assert!(c >= 1 && c <= g.max_degree() as u64 + 1);
        }
    }
}
