//! Flooding broadcast and leader election.
//!
//! The simplest payload algorithms: a designated source floods a value through
//! the network (every node forwards it the round after first hearing it), and
//! leader election floods the maximum node identifier.  Both run for
//! `diameter` rounds and send at most a couple of messages per edge, making
//! them the canonical *low-congestion* payloads for the secure compilers.

use congest_sim::traffic::{Output, Traffic};
use congest_sim::CongestAlgorithm;
use netgraph::traversal::diameter;
use netgraph::{Graph, NodeId};

/// Flooding broadcast of a single value from a source node.
///
/// Output per node: `[value]` if the node learned the broadcast value, `[]`
/// otherwise (cannot happen on a connected graph when run fault-free).
#[derive(Debug, Clone)]
pub struct FloodBroadcast {
    graph: Graph,
    source: NodeId,
    value: u64,
    rounds: usize,
    /// Current knowledge per node.
    known: Vec<Option<u64>>,
    /// Whether the node has already forwarded its value.
    forwarded: Vec<bool>,
}

impl FloodBroadcast {
    /// Broadcast `value` from `source` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (the broadcast could never complete).
    pub fn new(graph: Graph, source: NodeId, value: u64) -> Self {
        let d = diameter(&graph).expect("FloodBroadcast requires a connected graph");
        let n = graph.node_count();
        let mut known = vec![None; n];
        known[source] = Some(value);
        FloodBroadcast {
            graph,
            source,
            value,
            rounds: d.max(1),
            known,
            forwarded: vec![false; n],
        }
    }

    /// The broadcast value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Expected output for every node in a correct execution.
    pub fn expected_outputs(&self) -> Vec<Output> {
        vec![vec![self.value]; self.graph.node_count()]
    }
}

impl CongestAlgorithm for FloodBroadcast {
    fn name(&self) -> String {
        "flood-broadcast".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, _round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        for v in self.graph.nodes() {
            if let Some(val) = self.known[v] {
                if !self.forwarded[v] {
                    for &(u, _) in self.graph.neighbors(v) {
                        out.send(&self.graph, v, u, [val]);
                    }
                    self.forwarded[v] = true;
                }
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            if self.known[v].is_some() {
                continue;
            }
            for (_, payload) in inbox.inbox(&self.graph, v) {
                if let Some(&val) = payload.first() {
                    self.known[v] = Some(val);
                    break;
                }
            }
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.known
            .iter()
            .map(|k| k.map(|v| vec![v]).unwrap_or_default())
            .collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(2)
    }
}

/// Leader election by flooding the maximum node id for `diameter` rounds.
///
/// Output per node: `[leader_id]`.
#[derive(Debug, Clone)]
pub struct LeaderElection {
    graph: Graph,
    rounds: usize,
    best: Vec<u64>,
}

impl LeaderElection {
    /// Elect the maximum id on a connected graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn new(graph: Graph) -> Self {
        let d = diameter(&graph).expect("LeaderElection requires a connected graph");
        let best = graph.nodes().map(|v| v as u64).collect();
        LeaderElection {
            graph,
            rounds: d.max(1),
            best,
        }
    }

    /// Expected output (the maximum id, at every node).
    pub fn expected_outputs(&self) -> Vec<Output> {
        let leader = self.graph.node_count() as u64 - 1;
        vec![vec![leader]; self.graph.node_count()]
    }
}

impl CongestAlgorithm for LeaderElection {
    fn name(&self) -> String {
        "leader-election".into()
    }

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn send_into(&mut self, _round: usize, out: &mut Traffic) {
        out.begin_round(&self.graph);
        for v in self.graph.nodes() {
            for &(u, _) in self.graph.neighbors(v) {
                out.send(&self.graph, v, u, [self.best[v]]);
            }
        }
    }

    fn receive(&mut self, _round: usize, inbox: &Traffic) {
        for v in self.graph.nodes() {
            let mut best = self.best[v];
            for (_, payload) in inbox.inbox(&self.graph, v) {
                if let Some(&val) = payload.first() {
                    if val < self.graph.node_count() as u64 {
                        best = best.max(val);
                    }
                }
            }
            self.best[v] = best;
        }
    }

    fn outputs(&self) -> Vec<Output> {
        self.best.iter().map(|&b| vec![b]).collect()
    }

    fn congestion_bound(&self) -> Option<usize> {
        Some(self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_sim::run_fault_free;
    use netgraph::generators;

    #[test]
    fn broadcast_reaches_all_nodes() {
        let g = generators::grid(3, 4);
        let mut alg = FloodBroadcast::new(g, 5, 777);
        let out = run_fault_free(&mut alg);
        assert_eq!(out, alg.expected_outputs());
    }

    #[test]
    fn broadcast_from_every_source_on_cycle() {
        for s in 0..6 {
            let g = generators::cycle(6);
            let mut alg = FloodBroadcast::new(g, s, 42);
            let out = run_fault_free(&mut alg);
            assert!(out.iter().all(|o| o == &vec![42]));
        }
    }

    #[test]
    #[should_panic]
    fn broadcast_rejects_disconnected_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let _ = FloodBroadcast::new(g, 0, 1);
    }

    #[test]
    fn leader_election_elects_max_id() {
        for g in [
            generators::path(7),
            generators::cycle(8),
            generators::complete(5),
            generators::hypercube(3),
        ] {
            let mut alg = LeaderElection::new(g.clone());
            let out = run_fault_free(&mut alg);
            assert_eq!(
                out,
                alg.expected_outputs(),
                "graph with {} nodes",
                g.node_count()
            );
        }
    }

    #[test]
    fn leader_election_ignores_out_of_range_claims() {
        // receive() must not accept a fabricated id ≥ n (defensive validation the
        // byzantine experiments rely on to distinguish "wrong" from "absurd").
        let g = generators::path(3);
        let mut alg = LeaderElection::new(g.clone());
        let mut t = Traffic::new(&g);
        t.send(&g, 0, 1, vec![999]);
        alg.receive(0, &t);
        assert!(alg.outputs()[1][0] < 3);
    }
}
