//! Fault-free payload CONGEST algorithms.
//!
//! These are the algorithms `A` that the Fischer–Parter compilers protect:
//! they are written against the round-by-round
//! [`congest_sim::CongestAlgorithm`] interface, are correct when their messages
//! are delivered verbatim, and make *no* attempt to defend themselves — every
//! defensive property in the experiments comes from the compilers wrapping
//! them.
//!
//! | Algorithm | Rounds | Congestion | Role in the experiments |
//! |---|---|---|---|
//! | [`broadcast::FloodBroadcast`] | `D` | O(1) | low-congestion secure/resilient payload |
//! | [`broadcast::LeaderElection`] | `D` | `D` | payload whose output is a single global value |
//! | [`aggregation::BfsTreeAlgorithm`] | `D` | O(1) | structured output (parent/depth) |
//! | [`aggregation::ConvergecastSum`] | `3D+2` | O(1) | secure-aggregation example payload |
//! | [`gossip::TokenDissemination`] | `D + n/batch` | `n` | high-congestion payload (Thm 1.3, clique) |
//! | [`gossip::RandomizedColoring`] | configurable | O(rounds) | randomized payload with verifiable output |

pub mod aggregation;
pub mod broadcast;
pub mod gossip;

pub use aggregation::{BfsTreeAlgorithm, ConvergecastSum};
pub use broadcast::{FloodBroadcast, LeaderElection};
pub use gossip::{RandomizedColoring, TokenDissemination};
