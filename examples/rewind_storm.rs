//! The round-error-rate setting (Theorem 4.1): an adversary that stays quiet
//! and then corrupts a burst of edges, against the rewind-if-error compiler.
//!
//! Run with `cargo run --example rewind_storm`.

use mobile_congest::graphs::generators;
use mobile_congest::payloads::LeaderElection;
use mobile_congest::scenario::{RewindAdapter, Scenario};
use mobile_congest::sim::adversary::{AdversaryRole, BurstAdversary, CorruptionBudget};

fn main() {
    let n = 14;
    let f = 1;
    let g = generators::complete(n);

    // Quiet for 40 rounds, then 4 rounds in which 12 edges are corrupted — far
    // more than any fixed per-round budget, but within the average-rate budget.
    let gg = g.clone();
    let report = Scenario::on(g)
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            BurstAdversary::new(40, 4, 12, 9),
            CorruptionBudget::RoundErrorRate { total: 200 },
        )
        .seed(9)
        .compiled_with(RewindAdapter::new(f, 3))
        .run()
        .unwrap();
    println!(
        "rewind compiler: correct = {:?}, {} payload rounds simulated in {} network rounds ({:.1}x), {} edge-rounds corrupted",
        report.agrees_with_fault_free(),
        report.payload_rounds,
        report.network_rounds,
        report.overhead(),
        report.metrics.corrupted_edge_rounds
    );
    // The typed diagnostics channel: the compiler reports exactly how often
    // the burst forced it to rewind.
    println!(
        "typed notes: {:?} ({})",
        report.notes,
        report.notes.summary()
    );
    assert_eq!(report.agrees_with_fault_free(), Some(true));
    assert!(
        report.notes.rewinds().expect("rewind notes") >= 1,
        "the burst should force at least one rewind"
    );
}
