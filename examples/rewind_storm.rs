//! The round-error-rate setting (Theorem 4.1): an adversary that stays quiet
//! and then corrupts a burst of edges, against the rewind-if-error compiler.
//!
//! Run with `cargo run --example rewind_storm`.

use mobile_congest::compilers::rate::RewindCompiler;
use mobile_congest::graphs::generators;
use mobile_congest::graphs::tree_packing::star_packing;
use mobile_congest::payloads::LeaderElection;
use mobile_congest::sim::adversary::{AdversaryRole, BurstAdversary, CorruptionBudget};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::{run_fault_free, CongestAlgorithm};

fn main() {
    let n = 14;
    let f = 1;
    let g = generators::complete(n);
    let expected = run_fault_free(&mut LeaderElection::new(g.clone()));

    let compiler = RewindCompiler::new(star_packing(&g, 0), f, 3);
    // Quiet for 40 rounds, then 4 rounds in which 12 edges are corrupted — far
    // more than any fixed per-round budget, but within the average-rate budget.
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(BurstAdversary::new(40, 4, 12, 9)),
        CorruptionBudget::RoundErrorRate { total: 200 },
        9,
    );
    let (out, report) = compiler.run(|| LeaderElection::new(g.clone()), &mut net);
    println!(
        "rewind compiler: correct = {}, committed {}/{} payload rounds, {} rewinds, {} global rounds, {} network rounds",
        out == expected,
        report.committed_rounds,
        LeaderElection::new(g.clone()).rounds(),
        report.rewinds,
        report.global_rounds,
        report.network_rounds
    );
    println!("progress trace: {:?}", report.progress_trace);
    assert_eq!(out, expected);
}
