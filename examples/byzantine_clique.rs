//! CONGESTED CLIQUE token dissemination against a Θ(n)-mobile byzantine
//! adversary (Theorem 1.6), compared with the uncompiled baseline.
//!
//! Run with `cargo run --example byzantine_clique`.

use mobile_congest::compilers::resilient::CliqueCompiler;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::TokenDissemination;
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, CorruptionMode, GreedyHeaviest};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::{run_fault_free, run_on_network};

fn main() {
    let n = 20;
    let f = CliqueCompiler::max_tolerable_f(n);
    println!("clique n = {n}, tolerating f = {f} mobile byzantine edges per round");
    let g = generators::complete(n);
    let tokens: Vec<u64> = (0..n as u64).map(|v| 10_000 + v).collect();
    let expected = run_fault_free(&mut TokenDissemination::new(g.clone(), tokens.clone(), n));

    let adversary = || {
        Box::new(GreedyHeaviest::new(f).with_mode(CorruptionMode::ReplaceRandom))
    };
    let mut baseline_net = Network::new(
        g.clone(), AdversaryRole::Byzantine, adversary(), CorruptionBudget::Mobile { f }, 3,
    );
    let baseline = run_on_network(
        &mut TokenDissemination::new(g.clone(), tokens.clone(), n),
        &mut baseline_net,
    );
    println!(
        "uncompiled: correct = {} (adversary rewrote {} messages)",
        baseline == expected,
        baseline_net.metrics().corrupted_messages
    );

    let compiler = CliqueCompiler::new(&g, f, 11);
    let mut net = Network::new(
        g.clone(), AdversaryRole::Byzantine, adversary(), CorruptionBudget::Mobile { f }, 3,
    );
    let (out, report) = compiler.run(
        &mut TokenDissemination::new(g.clone(), tokens, n),
        &mut net,
    );
    println!(
        "compiled:   correct = {}, overhead = {:.1}x ({} network rounds for {} payload rounds)",
        out == expected,
        report.overhead(),
        report.network_rounds,
        report.payload_rounds
    );
    assert_eq!(out, expected);
}
