//! CONGESTED CLIQUE token dissemination against a Θ(n)-mobile byzantine
//! adversary (Theorem 1.6), compared with the uncompiled baseline — both runs
//! configured through the `Scenario` pipeline.
//!
//! Run with `cargo run --example byzantine_clique`.

use mobile_congest::compilers::resilient::CliqueCompiler;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::TokenDissemination;
use mobile_congest::scenario::{CliqueAdapter, Scenario, Uncompiled};
use mobile_congest::sim::adversary::{
    AdversaryRole, CorruptionBudget, CorruptionMode, GreedyHeaviest,
};

fn main() {
    let n = 20;
    let f = CliqueCompiler::max_tolerable_f(n);
    println!("clique n = {n}, tolerating f = {f} mobile byzantine edges per round");
    let g = generators::complete(n);
    let tokens: Vec<u64> = (0..n as u64).map(|v| 10_000 + v).collect();
    let payload = {
        let g = g.clone();
        move || TokenDissemination::new(g.clone(), tokens.clone(), n)
    };

    let baseline = Scenario::on(g.clone())
        .payload(payload.clone())
        .adversary(
            AdversaryRole::Byzantine,
            GreedyHeaviest::new(f).with_mode(CorruptionMode::ReplaceRandom),
            CorruptionBudget::Mobile { f },
        )
        .seed(3)
        .compiled_with(Uncompiled)
        .run()
        .unwrap();
    println!(
        "uncompiled: correct = {:?} (adversary rewrote {} messages)",
        baseline.agrees_with_fault_free(),
        baseline.metrics.corrupted_messages
    );

    let compiled = Scenario::on(g)
        .payload(payload)
        .adversary(
            AdversaryRole::Byzantine,
            GreedyHeaviest::new(f).with_mode(CorruptionMode::ReplaceRandom),
            CorruptionBudget::Mobile { f },
        )
        .seed(3)
        .compiled_with(CliqueAdapter::new(f, 11))
        .run()
        .unwrap();
    println!(
        "compiled:   correct = {:?}, overhead = {:.1}x ({} network rounds for {} payload rounds)",
        compiled.agrees_with_fault_free(),
        compiled.overhead(),
        compiled.network_rounds,
        compiled.payload_rounds
    );
    assert_eq!(compiled.agrees_with_fault_free(), Some(true));
}
