//! A deterministic parallel campaign: the clique and a sparse circulant under
//! byzantine and eavesdropping adversaries, through three compilers, four
//! seed repetitions per cell, fanned across worker threads — with the typed
//! `CompilerNotes` diagnostics aggregated per grid cell and the JSONL
//! trajectory printed at the end.  The finale rebuilds the same campaign
//! from its serializable `CampaignSpec` form (scenario-as-data) and shows
//! the reports are byte-identical.
//!
//! Run with `cargo run --example campaign`.

use mobile_congest::graphs::generators;
use mobile_congest::harness::Campaign;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::matrix::{AdversarySpec, CompilerSpec, GraphSpec};
use mobile_congest::scenario::{
    BoxedAlgorithm, CliqueAdapter, StaticToMobileAdapter, TreePackingAdapter, Uncompiled,
};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};

fn main() {
    let campaign = Campaign::new(0xC0FFEE)
        .graphs(vec![
            GraphSpec::new("K12", generators::complete(12)),
            GraphSpec::new("circ(18,4)", generators::circulant(18, 4)),
        ])
        .adversaries(vec![
            AdversarySpec::new(
                "random-mobile",
                AdversaryRole::Byzantine,
                CorruptionBudget::Mobile { f: 1 },
                |seed| Box::new(RandomMobile::new(1, seed)),
            ),
            AdversarySpec::new(
                "eavesdropper",
                AdversaryRole::Eavesdropper,
                CorruptionBudget::Mobile { f: 2 },
                |seed| Box::new(RandomMobile::new(2, seed)),
            ),
        ])
        .compilers(vec![
            CompilerSpec::of(Uncompiled),
            CompilerSpec::of(CliqueAdapter::new(1, 5)),
            CompilerSpec::of(TreePackingAdapter::new(1, 5)),
            CompilerSpec::of(StaticToMobileAdapter::new(4, 2, 5)),
        ])
        .payload(|g| Box::new(FloodBroadcast::new(g.clone(), 0, 777)) as BoxedAlgorithm)
        .repetitions(4);

    println!(
        "running {} cells on {} workers ...\n",
        campaign.cell_count(),
        mobile_congest::harness::default_threads()
    );
    let report = campaign.run();
    let summaries = report.summaries();

    print!("{}", report.to_table_with(&summaries));
    println!(
        "\n{} cells, {} skipped by validation; protected cells agree with fault-free: {}",
        report.cells.len(),
        report.skipped_count(),
        report.all_protected_cells_agree()
    );

    // Typed notes survive aggregation: the resilient compilers report their
    // correction verdict, the secrecy compiler its key-round budget.
    for s in &summaries {
        if let Some(stat) = s.stat("fully_corrected") {
            println!(
                "{:<12} {:<14} {:<22} fully_corrected mean over {} reps: {:.2}",
                s.graph, s.adversary, s.compiler, stat.count, stat.mean
            );
        }
        if let Some(stat) = s.stat("key_rounds") {
            println!(
                "{:<12} {:<14} {:<22} key rounds p50/p99: {}/{}",
                s.graph, s.adversary, s.compiler, stat.p50, stat.p99
            );
        }
    }

    // The first few lines of the JSONL trajectory the bench harness exports.
    println!("\nJSONL trajectory (first 3 lines):");
    for line in report.to_jsonl_with(&summaries).lines().take(3) {
        println!("{line}");
    }

    assert!(report.all_protected_cells_agree());

    // Scenario-as-data: the same campaign as a serializable spec.  The defs
    // resolve through the exact registries the hand-built grid above used,
    // so the spec-built report is byte-identical — and the JSON form can be
    // checked in, diffed, sharded across machines and resumed (see
    // `cargo run --bin campaign -- --spec specs/e16-small.json`).
    use mobile_congest::graphs::GraphDef;
    use mobile_congest::harness::{CampaignSpec, GridSpec, PayloadDef};
    use mobile_congest::scenario::matrix::AdversaryDef;
    use mobile_congest::scenario::CompilerDef;

    let spec = CampaignSpec {
        seed: 0xC0FFEE,
        repetitions: 4,
        grid: GridSpec {
            graphs: vec![GraphDef::complete(12), GraphDef::circulant(18, 4)],
            adversaries: vec![
                AdversaryDef::RandomMobile { f: 1 },
                AdversaryDef::Eavesdropper { f: 2 },
            ],
            compilers: vec![
                CompilerDef::Uncompiled,
                CompilerDef::Clique { f: 1, seed: 5 },
                CompilerDef::TreePacking {
                    f: 1,
                    trees: None,
                    seed: 5,
                    packing: Default::default(),
                },
                CompilerDef::StaticToMobile {
                    t: 4,
                    words: 2,
                    seed: 5,
                },
            ],
            payload: PayloadDef::FloodBroadcast {
                source: 0,
                value: 777,
            },
        },
    };
    let from_spec = Campaign::from_spec(&spec)
        .expect("the spec resolves through the registries")
        .run();
    assert_eq!(
        from_spec.fingerprint(),
        report.fingerprint(),
        "spec-built and hand-built campaigns are byte-identical"
    );
    println!(
        "\nscenario-as-data: Campaign::from_spec reproduced all {} cells byte-identically",
        from_spec.cells.len()
    );
    println!(
        "spec fingerprint {} — the first lines of its JSON form:",
        spec.fingerprint()
    );
    for line in spec.to_json().lines().take(8) {
        println!("  {line}");
    }
}
