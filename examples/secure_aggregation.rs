//! Secure aggregation: a sensor grid computes the sum of its readings while a
//! mobile eavesdropper taps a changing set of links every round.
//!
//! Demonstrates the Theorem 1.2 static→mobile key exchange and the Theorem 1.3
//! congestion-sensitive compiler, and shows that the plaintext readings never
//! appear in the adversary's recorded view.
//!
//! Run with `cargo run --example secure_aggregation`.

use mobile_congest::compilers::secure::{CongestionSensitiveCompiler, StaticToMobileCompiler};
use mobile_congest::graphs::generators;
use mobile_congest::payloads::ConvergecastSum;
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::run_fault_free;

fn main() {
    let g = generators::grid(4, 4);
    let readings: Vec<u64> = (0..16).map(|v| 100 + 7 * v).collect();
    let f = 2;
    let expected = run_fault_free(&mut ConvergecastSum::new(g.clone(), 0, readings.clone()));
    println!("true total = {}", expected[0][0]);

    // Theorem 1.2 compiler: one-time-pad the whole execution.
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Eavesdropper,
        Box::new(RandomMobile::new(f, 3)),
        CorruptionBudget::Mobile { f },
        3,
    );
    let compiler = StaticToMobileCompiler::new(6, 2, 42);
    let (out, report) = compiler.run(&mut ConvergecastSum::new(g.clone(), 0, readings.clone()), &mut net);
    println!(
        "static→mobile compiler: total = {} (key rounds {}, simulation rounds {})",
        out[0][0], report.key_rounds, report.simulation_rounds
    );
    assert_eq!(out, expected);
    let leaked = net.view_log().entries.iter().any(|e| {
        [&e.forward, &e.backward].iter().any(|s| s.as_ref().map_or(false, |p| p.iter().any(|w| readings.contains(w))))
    });
    println!("eavesdropper saw {} edge-rounds; plaintext reading observed = {leaked}", net.view_log().len());

    // Theorem 1.3 compiler additionally hides which edges carry real traffic.
    let mut net2 = Network::new(
        g.clone(),
        AdversaryRole::Eavesdropper,
        Box::new(RandomMobile::new(f, 5)),
        CorruptionBudget::Mobile { f },
        5,
    );
    let cs = CongestionSensitiveCompiler::new(f, 2, 9);
    let (out2, rep2) = cs.run(&mut ConvergecastSum::new(g.clone(), 0, readings), &mut net2, 0);
    println!(
        "congestion-sensitive compiler: total = {} (local keys {}, global keys {}, simulation {})",
        out2[0][0], rep2.local_key_rounds, rep2.global_key_rounds, rep2.simulation_rounds
    );
    assert_eq!(out2, expected);
}
