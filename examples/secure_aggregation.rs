//! Secure aggregation: a sensor grid computes the sum of its readings while a
//! mobile eavesdropper taps a changing set of links every round.
//!
//! Demonstrates the Theorem 1.2 static→mobile key exchange and the Theorem 1.3
//! congestion-sensitive compiler through the `Scenario` pipeline, and shows
//! that the plaintext readings never appear in the adversary's recorded view.
//!
//! Run with `cargo run --example secure_aggregation`.

use mobile_congest::graphs::generators;
use mobile_congest::payloads::ConvergecastSum;
use mobile_congest::scenario::{CongestionSensitiveAdapter, Scenario, StaticToMobileAdapter};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};

fn main() {
    let g = generators::grid(4, 4);
    let readings: Vec<u64> = (0..16).map(|v| 100 + 7 * v).collect();
    let f = 2;
    let payload = {
        let g = g.clone();
        let readings = readings.clone();
        move || ConvergecastSum::new(g.clone(), 0, readings.clone())
    };

    // Theorem 1.2 compiler: one-time-pad the whole execution.
    let report = Scenario::on(g.clone())
        .payload(payload.clone())
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(f, 3),
            CorruptionBudget::Mobile { f },
        )
        .seed(3)
        .compiled_with(StaticToMobileAdapter::new(6, 2, 42))
        .run()
        .unwrap();
    println!(
        "static→mobile compiler: total = {} (true total {}), {} network rounds",
        report.outputs[0][0],
        report.fault_free.as_ref().unwrap()[0][0],
        report.network_rounds
    );
    assert_eq!(report.agrees_with_fault_free(), Some(true));
    println!(
        "eavesdropper saw {} edge-rounds; plaintext reading observed = {}",
        report.view.len(),
        report.view_contains_any(&readings)
    );

    // Theorem 1.3 compiler additionally hides which edges carry real traffic.
    let report2 = Scenario::on(g)
        .payload(payload)
        .adversary(
            AdversaryRole::Eavesdropper,
            RandomMobile::new(f, 5),
            CorruptionBudget::Mobile { f },
        )
        .seed(5)
        .compiled_with(CongestionSensitiveAdapter::new(f, 2, 9))
        .run()
        .unwrap();
    println!(
        "congestion-sensitive compiler: total = {}, {} network rounds ({:.1}x overhead)",
        report2.outputs[0][0],
        report2.network_rounds,
        report2.overhead()
    );
    assert_eq!(report2.agrees_with_fault_free(), Some(true));
    assert!(!report2.view_contains_any(&readings));
}
