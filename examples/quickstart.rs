//! Quickstart: protect a flooding broadcast against a mobile byzantine
//! adversary on the CONGESTED CLIQUE.
//!
//! Run with `cargo run --example quickstart`.

use mobile_congest::compilers::resilient::CliqueCompiler;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::{run_fault_free, run_on_network, CongestAlgorithm};

fn main() {
    let n = 16;
    let f = 2;
    let g = generators::complete(n);
    let value = 0xC0FFEE;

    // 1. Fault-free reference run.
    let expected = run_fault_free(&mut FloodBroadcast::new(g.clone(), 0, value));
    println!("fault-free: every node learns {value:#x} in {} rounds", FloodBroadcast::new(g.clone(), 0, value).rounds());

    // 2. Uncompiled baseline under an f-mobile byzantine adversary.
    let mut baseline_net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(RandomMobile::new(f, 7)),
        CorruptionBudget::Mobile { f },
        7,
    );
    let baseline = run_on_network(&mut FloodBroadcast::new(g.clone(), 0, value), &mut baseline_net);
    let baseline_ok = baseline == expected;
    println!(
        "uncompiled under f={f} mobile adversary: correct = {baseline_ok} ({} messages corrupted)",
        baseline_net.metrics().corrupted_messages
    );

    // 3. The Theorem 1.6 clique compiler under the same adversary class.
    let compiler = CliqueCompiler::new(&g, f, 1);
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(RandomMobile::new(f, 7)),
        CorruptionBudget::Mobile { f },
        7,
    );
    let (out, report) = compiler.run(&mut FloodBroadcast::new(g.clone(), 0, value), &mut net);
    println!(
        "compiled: correct = {}, payload rounds = {}, network rounds = {}, overhead = {:.1}x, corrupted edge-rounds = {}",
        out == expected,
        report.payload_rounds,
        report.network_rounds,
        report.overhead(),
        net.metrics().corrupted_edge_rounds
    );
    assert_eq!(out, expected, "the compiled run must match the fault-free run");
}
