//! Quickstart: protect a flooding broadcast against a mobile byzantine
//! adversary on the CONGESTED CLIQUE, in three `Scenario` one-liners.
//!
//! Run with `cargo run --example quickstart`.

use mobile_congest::graphs::generators;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::{CliqueAdapter, FaultFree, RunReport, Scenario, Uncompiled};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};

fn main() {
    let n = 16;
    let f = 2;
    let g = generators::complete(n);
    let value = 0xC0FFEE;
    let payload = {
        let g = g.clone();
        move || FloodBroadcast::new(g.clone(), 0, value)
    };

    // 1. Fault-free reference run.
    let reference = Scenario::on(g.clone())
        .payload(payload.clone())
        .compiled_with(FaultFree)
        .run()
        .unwrap();
    println!(
        "fault-free: every node learns {value:#x} in {} rounds",
        reference.payload_rounds
    );

    // 2. Uncompiled baseline under an f-mobile byzantine adversary.
    let baseline = Scenario::on(g.clone())
        .payload(payload.clone())
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 7),
            CorruptionBudget::Mobile { f },
        )
        .seed(7)
        .compiled_with(Uncompiled)
        .run()
        .unwrap();
    println!(
        "uncompiled under f={f} mobile adversary: correct = {:?} ({} messages corrupted)",
        baseline.agrees_with_fault_free(),
        baseline.metrics.corrupted_messages
    );

    // 3. The Theorem 1.6 clique compiler under the same adversary class.
    let compiled = Scenario::on(g.clone())
        .payload(payload)
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 7),
            CorruptionBudget::Mobile { f },
        )
        .seed(7)
        .compiled_with(CliqueAdapter::new(f, 1))
        .run()
        .unwrap();
    println!("{}", RunReport::table_header());
    println!("{}", baseline.table_row());
    println!("{}", compiled.table_row());
    println!(
        "compiled: payload rounds = {}, network rounds = {}, overhead = {:.1}x, corrupted edge-rounds = {}",
        compiled.payload_rounds,
        compiled.network_rounds,
        compiled.overhead(),
        compiled.metrics.corrupted_edge_rounds
    );
    assert_eq!(
        compiled.agrees_with_fault_free(),
        Some(true),
        "the compiled run must match the fault-free run"
    );
}
