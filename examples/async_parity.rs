//! The asynchronous execution runtime and its parity contract: the same
//! scenario run on the lockstep round engine and on the async executor at
//! the zero-delay in-order schedule must agree byte-for-byte — and under a
//! real delay/reorder/crash schedule the outputs still converge, only
//! virtual time stretches.
//!
//! Run with `cargo run --example async_parity`.

use mobile_congest::graphs::generators;
use mobile_congest::payloads::FloodBroadcast;
use mobile_congest::scenario::{
    AsyncExecutor, CrashWindow, LatencyModel, Scenario, ScheduleDef, Uncompiled,
};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};

fn run(schedule: Option<ScheduleDef>) -> mobile_congest::scenario::RunReport {
    let g = generators::grid(4, 4);
    let gg = g.clone();
    let builder = Scenario::on(g)
        .payload(move || FloodBroadcast::new(gg.clone(), 0, 4242))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(1, 11),
            CorruptionBudget::Mobile { f: 1 },
        )
        .seed(11);
    match schedule {
        None => builder.compiled_with(Uncompiled),
        Some(s) => builder.compiled_with(AsyncExecutor::new(s)),
    }
    .run()
    .unwrap()
}

fn main() {
    // 1. Parity: the synchronous schedule IS the lockstep engine.
    let lockstep = run(None);
    let sync = run(Some(ScheduleDef::synchronous()));
    assert_eq!(sync.outputs, lockstep.outputs, "parity contract broken");
    assert_eq!(
        format!("{:?}", sync.metrics),
        format!("{:?}", lockstep.metrics),
        "parity contract broken (metrics)"
    );
    println!(
        "parity: async(sync) == lockstep on grid4x4 under random-mobile (f=1): \
         {} rounds, {} corrupted edge-rounds, outputs identical",
        lockstep.network_rounds, lockstep.metrics.corrupted_edge_rounds
    );

    // 2. Asynchrony: jittered latency plus a crash-recovery window.  The
    //    synchronizer stretches virtual time but every node still terminates
    //    with the same per-round message pattern semantics.
    let schedule = ScheduleDef::synchronous()
        .with_latency(LatencyModel::Uniform { min: 0, max: 3 })
        .with_reorder_window(2)
        .with_crash(CrashWindow {
            node: 5,
            from: 1,
            until: 6,
        });
    let stretched = run(Some(schedule));
    println!(
        "{}: notes {}",
        stretched.compiler,
        stretched.notes.summary()
    );
    assert_eq!(
        stretched.outputs.len(),
        lockstep.outputs.len(),
        "every node must report an output"
    );
    let ticks = stretched
        .notes
        .metrics()
        .iter()
        .find(|(k, _)| *k == "ticks")
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    assert!(
        ticks as usize > lockstep.network_rounds,
        "delays must stretch virtual time"
    );
    let completed = stretched
        .notes
        .metrics()
        .iter()
        .any(|(k, v)| *k == "completed" && *v == 1.0);
    assert!(completed, "the crashed node must catch up after recovery");
    println!(
        "async run completed: virtual time {ticks} ticks vs {} lockstep rounds",
        lockstep.network_rounds
    );
}
