//! Leader election on a random regular expander with the Theorem 1.7 compiler:
//! the weak tree packing is computed while the mobile adversary is already
//! attacking, then every round is corrected through it.
//!
//! Run with `cargo run --example expander_gossip`.

use mobile_congest::compilers::resilient::expander::run_expander_compiled;
use mobile_congest::graphs::connectivity::sweep_conductance;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::LeaderElection;
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
use mobile_congest::sim::network::Network;
use mobile_congest::sim::run_fault_free;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 48;
    let d = 24;
    let f = 1;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::random_regular(&mut rng, n, d);
    let phi = sweep_conductance(&g, 200).unwrap_or(0.0);
    println!("expander: n = {n}, degree ≈ {d}, sweep conductance ≈ {phi:.3}");

    let expected = run_fault_free(&mut LeaderElection::new(g.clone()));
    let mut net = Network::new(
        g.clone(),
        AdversaryRole::Byzantine,
        Box::new(RandomMobile::new(f, 17)),
        CorruptionBudget::Mobile { f },
        17,
    );
    let (out, report) = run_expander_compiled(&mut LeaderElection::new(g.clone()), &mut net, f, 6, 6, 23);
    println!(
        "weak packing built under attack: {}/{} good trees in {} rounds",
        report.packing.good_trees, report.packing.k, report.packing.rounds
    );
    println!(
        "compiled leader election: correct = {}, network rounds = {}, fully corrected = {}",
        out == expected,
        report.compilation.network_rounds,
        report.compilation.fully_corrected
    );
    assert_eq!(out, expected);
}
