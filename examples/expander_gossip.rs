//! Leader election on a random regular expander with the Theorem 1.7 compiler:
//! the weak tree packing is computed while the mobile adversary is already
//! attacking, then every round is corrected through it.
//!
//! Run with `cargo run --example expander_gossip`.

use mobile_congest::graphs::connectivity::sweep_conductance;
use mobile_congest::graphs::generators;
use mobile_congest::payloads::LeaderElection;
use mobile_congest::scenario::{ExpanderAdapter, Scenario};
use mobile_congest::sim::adversary::{AdversaryRole, CorruptionBudget, RandomMobile};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 48;
    let d = 24;
    let f = 1;
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::random_regular(&mut rng, n, d);
    let phi = sweep_conductance(&g, 200).unwrap_or(0.0);
    println!("expander: n = {n}, degree ≈ {d}, sweep conductance ≈ {phi:.3}");

    let gg = g.clone();
    let report = Scenario::on(g)
        .payload(move || LeaderElection::new(gg.clone()))
        .adversary(
            AdversaryRole::Byzantine,
            RandomMobile::new(f, 17),
            CorruptionBudget::Mobile { f },
        )
        .seed(17)
        .compiled_with(ExpanderAdapter::new(f, 6, 6, 23))
        .run()
        .unwrap();
    println!(
        "compiled leader election: correct = {:?}, network rounds = {}, overhead = {:.1}x",
        report.agrees_with_fault_free(),
        report.network_rounds,
        report.overhead()
    );
    println!("{report}");
    assert_eq!(report.agrees_with_fault_free(), Some(true));
}
